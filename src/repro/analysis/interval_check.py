"""Translation validation of interval-derived register assignments.

The linear-scan family (:mod:`repro.intervals.linear_scan`) colors
live *intervals*, not the interference graph — so the graph-side
passes (``ALLOC001``..``ALLOC004``) alone would leave the interval
abstraction itself unaudited.  The ``allocation-intervals`` pass
closes that gap with three ``INTV`` diagnostics, all recomputed from
scratch on the result's final code:

* ``INTV001`` (error) — *soundness of the abstraction*: two non-slot
  variables interfere in the Chaitin graph but their rebuilt live
  intervals do not intersect.  The occupancy convention of
  :mod:`repro.intervals.model` makes this impossible by construction;
  a firing means interval non-overlap no longer certifies graph
  non-adjacency and every interval-based merge is suspect.
* ``INTV002`` (error) — *exclusivity of the assignment*: two
  variables share a register while their intervals intersect (the
  interval-side mirror of ``ALLOC001``, caught without consulting the
  graph at all).
* ``INTV003`` (info on success, error on mismatch) — *pressure
  agreement*: the maximum simultaneous interval overlap equals the
  function's Maxlive, certifying that the interval and set views of
  register pressure coincide on this exact code.

The pass guards on the ``interval_variant`` marker of
:class:`~repro.intervals.linear_scan.LinearScanResult` and skips
silently for graph-based allocators, so ``repro check`` and the
engine's ``verify=`` path can run the whole ``allocation`` kind
uniformly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

from .diagnostics import Diagnostic
from .registry import AnalysisContext, analysis_pass

__all__ = ["check_interval_allocation"]


@analysis_pass(
    "allocation-intervals", "allocation",
    codes=("INTV001", "INTV002", "INTV003"),
)
def check_interval_allocation(
    result: Any, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    """Interval-derived assignments are interference-valid."""
    if not getattr(result, "interval_variant", ""):
        return
    from ..allocator.spill import is_memory_slot
    from ..intervals.model import build_intervals
    from ..ir.interference import chaitin_interference
    from ..ir.liveness import maxlive

    func = result.function
    iset = build_intervals(func)
    intervals = iset.intervals
    graph = chaitin_interference(func, weighted=False)
    for u, v in graph.edges():
        ctx.check_budget()
        if is_memory_slot(u) or is_memory_slot(v):
            continue
        iu, iv = intervals.get(u), intervals.get(v)
        if iu is None or iv is None or not iu.intersects(iv):
            a, b = sorted((str(u), str(v)))
            yield Diagnostic(
                "INTV001", "error",
                f"{a} and {b} interfere but their live intervals do "
                "not intersect — the interval abstraction missed an "
                "interference",
                where=f"{a}--{b}", obj=func.name,
                detail={"edge": [a, b]},
            )
    by_register: Dict[int, List[str]] = {}
    for var, register in result.assignment.items():
        if not is_memory_slot(var):
            by_register.setdefault(register, []).append(var)
    for register in sorted(by_register):
        members = sorted(by_register[register])
        for i, a in enumerate(members):
            ia = intervals.get(a)
            if ia is None:
                continue
            for b in members[i + 1:]:
                ctx.check_budget()
                ib = intervals.get(b)
                if ib is not None and ia.intersects(ib):
                    yield Diagnostic(
                        "INTV002", "error",
                        f"{a} and {b} share register r{register} but "
                        "their live intervals intersect",
                        where=f"{a}--{b}", obj=func.name,
                        detail={"pair": [a, b], "register": register},
                    )
    ctx.check_budget()
    overlap = iset.max_overlap()
    pressure = maxlive(func)
    if overlap == pressure:
        yield Diagnostic(
            "INTV003", "info",
            f"max simultaneous interval overlap {overlap} == Maxlive "
            "— the interval and set pressure views agree",
            obj=func.name,
            detail={"max_overlap": overlap, "maxlive": pressure},
        )
    else:
        yield Diagnostic(
            "INTV003", "error",
            f"max simultaneous interval overlap {overlap} != Maxlive "
            f"{pressure}",
            obj=func.name,
            detail={"max_overlap": overlap, "maxlive": pressure},
        )
