"""The analysis-pass registry and the shared analysis context.

A *pass* is a plain function ``fn(subject, ctx) -> Iterable[Diagnostic]``
registered under a unique name with the :func:`analysis_pass` decorator.
Passes declare a ``kind`` — what type of subject they check — so the
runner can select all passes applicable to a function, a graph, a
certificate, a coalescing, or an allocation result:

========  =======================================================
kind      subject passed to the pass
========  =======================================================
function  :class:`repro.ir.cfg.Function` (structure + strictness)
ssa       :class:`repro.ir.cfg.Function` in (claimed) strict SSA
dataflow  :class:`repro.ir.cfg.Function`, program diagnostics built
          on the :mod:`repro.analysis.dataflow` framework
graph     ``(Function, InterferenceGraph)`` pair to cross-check
certificate  :class:`repro.analysis.certificates.Certificate` witness
coalescing  :class:`repro.analysis.coalescing_check.CoalescingClaim`
allocation  an allocation-result-like object (duck-typed)
========  =======================================================

Passes never mutate their subject, never raise on a *finding* (they
yield diagnostics instead), and let :exc:`repro.budget.BudgetExceeded`
escape — the runner converts it into a deterministic ``BUDGET001``
warning so campaign-time verification degrades instead of stalling.

The :class:`AnalysisContext` carries the cross-cutting knobs: the
register count ``k``, the optional :class:`~repro.budget.Budget`, the
:class:`~repro.obs.Tracer`, and mode flags such as ``expect_chordal``
(the paper-aware strict-SSA mode of the liveness pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..budget import Budget
from ..obs import NULL_TRACER, Tracer
from .diagnostics import Diagnostic

__all__ = [
    "PASS_KINDS",
    "AnalysisContext",
    "AnalysisPass",
    "analysis_pass",
    "get_pass",
    "passes_for",
    "all_passes",
]

#: The subject kinds a pass may declare.
PASS_KINDS: Tuple[str, ...] = (
    "function", "ssa", "dataflow", "graph", "certificate", "coalescing",
    "allocation",
)

PassFn = Callable[[Any, "AnalysisContext"], Iterable[Diagnostic]]


@dataclass
class AnalysisContext:
    """Shared knobs threaded through every pass of one analysis run."""

    k: int = 0
    expect_chordal: bool = False
    budget: Optional[Budget] = None
    tracer: Tracer = NULL_TRACER
    obj: str = ""
    params: Dict[str, Any] = field(default_factory=dict)

    def check_budget(self) -> None:
        """Account one unit of analysis work against the budget."""
        if self.budget is not None:
            self.budget.check()


@dataclass(frozen=True)
class AnalysisPass:
    """A registered pass: metadata plus the checking function."""

    name: str
    kind: str
    codes: Tuple[str, ...]
    doc: str
    fn: PassFn

    def run(self, subject: Any, ctx: AnalysisContext) -> List[Diagnostic]:
        """Execute the pass, stamping each diagnostic with the pass name."""
        out: List[Diagnostic] = []
        for diag in self.fn(subject, ctx):
            if diag.passname != self.name:
                diag = replace(
                    diag, obj=diag.obj or ctx.obj, passname=self.name
                )
            out.append(diag)
        return out


_REGISTRY: Dict[str, AnalysisPass] = {}


def analysis_pass(
    name: str, kind: str, codes: Iterable[str] = ()
) -> Callable[[PassFn], PassFn]:
    """Register a checking function as a named analysis pass.

    ``codes`` declares the diagnostic codes the pass may emit (used by
    the docs generator and the CLI pass catalog).  Registering two
    passes under one name is a programming error and raises.
    """
    if kind not in PASS_KINDS:
        raise ValueError(f"unknown pass kind {kind!r} (one of {PASS_KINDS})")

    def register(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ValueError(f"analysis pass {name!r} already registered")
        _REGISTRY[name] = AnalysisPass(
            name=name,
            kind=kind,
            codes=tuple(codes),
            doc=(fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else "",
            fn=fn,
        )
        return fn

    return register


def get_pass(name: str) -> AnalysisPass:
    """Look up one registered pass by name (``KeyError`` if absent)."""
    return _REGISTRY[name]


def passes_for(kind: str) -> List[AnalysisPass]:
    """All registered passes of one kind, in registration order."""
    if kind not in PASS_KINDS:
        raise ValueError(f"unknown pass kind {kind!r} (one of {PASS_KINDS})")
    return [p for p in _REGISTRY.values() if p.kind == kind]


def all_passes() -> List[AnalysisPass]:
    """Every registered pass, in registration order."""
    return list(_REGISTRY.values())
