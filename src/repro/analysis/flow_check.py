"""Program diagnostics built on the generic dataflow framework.

Four registered passes of the ``dataflow`` kind, all running on a
structurally-valid :class:`repro.ir.cfg.Function` and all consuming
the :mod:`repro.analysis.dataflow` engine (directly or through the
liveness instance it powers):

* ``unreachable-code`` — ``FLOW001`` (warning): a block no entry path
  reaches.  Dead blocks are invisible to liveness and dominance (both
  restrict to reachable code), so everything the checker certifies
  silently ignores them — worth telling the user about;
* ``dead-defs`` — ``FLOW002`` (warning): a definition whose value is
  not live immediately after it — never read on any path.  Under
  strict SSA this coincides with "never used anywhere"; on non-SSA
  programs it additionally catches overwritten stores;
* ``redundant-copies`` — ``FLOW003`` (info): the affinity lint.  A
  ``mov`` whose endpoints do not interfere is exactly a copy every
  conservative coalescing strategy is *allowed* to merge (Briggs/
  George aside, merging non-interfering endpoints is always sound);
  reporting them makes the coalescable mass of a program visible;
* ``pressure-hotspots`` — ``FLOW004``: the per-block Maxlive profile
  of the spill-everywhere companion paper.  Always emits one info
  diagnostic locating the block (and program point) where the
  function's Maxlive is reached; with ``ctx.k > 0`` it additionally
  warns for every block whose peak pressure exceeds ``k`` — the
  blocks that force spills for that register budget.

Locations use the ``block`` / ``block:index`` convention of the other
passes, so :mod:`repro.analysis.provenance` maps them to ``file:line``
for frontend-lowered input.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from ..ir.cfg import Function
from ..ir.instructions import Var
from ..ir.liveness import compute_liveness
from .diagnostics import Diagnostic
from .registry import AnalysisContext, analysis_pass

__all__ = ["block_pressure"]


@analysis_pass("unreachable-code", "dataflow", codes=("FLOW001",))
def check_unreachable(
    func: Function, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    """Blocks unreachable from the entry (FLOW001)."""
    reachable = func.reachable()
    for name in func.blocks:
        ctx.check_budget()
        if name not in reachable:
            yield Diagnostic(
                "FLOW001", "warning",
                f"block {name} is unreachable from the entry "
                f"{func.entry}; liveness and SSA checks ignore it",
                where=name, obj=func.name,
                detail={"block": name, "entry": func.entry},
            )


@analysis_pass("dead-defs", "dataflow", codes=("FLOW002",))
def check_dead_defs(
    func: Function, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    """Definitions that are dead at their own program point (FLOW002)."""
    info = compute_liveness(func)
    reachable = func.reachable()
    for name in func.blocks:
        if name not in reachable:
            continue
        ctx.check_budget()
        block = func.blocks[name]
        live: Set[Var] = set(info.live_out[name])
        dead: list = []
        for i in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[i]
            for v in instr.defs:
                if v not in live:
                    dead.append((i, instr, v))
            live -= set(instr.defs)
            live |= set(instr.uses)
        for i, instr, v in reversed(dead):
            yield Diagnostic(
                "FLOW002", "warning",
                f"definition of {v} (op {instr.op}) is dead: the value "
                "is never used on any path",
                where=f"{name}:{i}", obj=func.name,
                detail={"var": str(v), "op": instr.op, "block": name},
            )
        # φ-targets are defined at the block top, in parallel
        for phi in block.phis:
            if phi.target not in live:
                yield Diagnostic(
                    "FLOW002", "warning",
                    f"φ-definition of {phi.target} is dead: the value "
                    "is never used on any path",
                    where=name, obj=func.name,
                    detail={"var": str(phi.target), "op": "phi",
                            "block": name},
                )


@analysis_pass("redundant-copies", "dataflow", codes=("FLOW003",))
def check_redundant_copies(
    func: Function, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    """The affinity lint: trivially coalescable copies (FLOW003)."""
    from ..ir.interference import chaitin_interference

    graph = chaitin_interference(func, weighted=False, tracer=ctx.tracer)
    reachable = func.reachable()
    for name, i, instr in func.moves():
        if name not in reachable:
            continue
        ctx.check_budget()
        dst, src = instr.defs[0], instr.uses[0]
        if dst == src:
            yield Diagnostic(
                "FLOW003", "info",
                f"copy {dst} = mov {src} is a self-copy: it can be "
                "deleted outright",
                where=f"{name}:{i}", obj=func.name,
                detail={"dst": str(dst), "src": str(src), "self": True},
            )
        elif not graph.has_edge(dst, src):
            yield Diagnostic(
                "FLOW003", "info",
                f"copy {dst} = mov {src} is coalescable: the endpoints "
                "do not interfere, so merging them is always safe",
                where=f"{name}:{i}", obj=func.name,
                detail={"dst": str(dst), "src": str(src), "self": False},
            )


def block_pressure(func: Function) -> Dict[str, Tuple[int, int]]:
    """Per-block peak register pressure: ``{block: (pressure, point)}``.

    Pressure follows the Maxlive convention of
    :func:`repro.ir.liveness.maxlive`: a variable is live *at* its
    definition point, and all φ-targets of a block count at its top
    (point 0), where they are defined in parallel.  ``point`` is the
    earliest instruction index achieving the block's peak
    (``len(instrs)`` = the block-end boundary point).  The maximum
    over blocks is exactly ``maxlive(func)``.
    """
    info = compute_liveness(func)
    out: Dict[str, Tuple[int, int]] = {}
    for name in func.blocks:
        if name not in info.live_out:
            continue
        block = func.blocks[name]
        live: Set[Var] = set(info.live_out[name])
        best, point = len(live), len(block.instrs)
        for i in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[i]
            here = len(live | set(instr.defs))
            if here >= best:
                best, point = here, i
            live -= set(instr.defs)
            live |= set(instr.uses)
        top = len(live | {phi.target for phi in block.phis})
        if top >= best:
            best, point = top, 0
        out[name] = (best, point)
    return out


@analysis_pass("pressure-hotspots", "dataflow", codes=("FLOW004",))
def check_pressure_hotspots(
    func: Function, ctx: AnalysisContext
) -> Iterator[Diagnostic]:
    """The Maxlive profile: hotspot evidence + spill-forcing blocks."""
    ctx.check_budget()
    profile = block_pressure(func)
    if not profile:
        return
    peak = max(p for p, _ in profile.values())
    if ctx.k > 0:
        for name, (p, point) in profile.items():
            if p > ctx.k:
                yield Diagnostic(
                    "FLOW004", "warning",
                    f"register pressure {p} in block {name} exceeds "
                    f"k={ctx.k}: this block forces spills",
                    where=f"{name}:{point}", obj=func.name,
                    detail={"block": name, "pressure": p, "k": ctx.k,
                            "point": point},
                )
    hot = next(n for n, (p, _) in profile.items() if p == peak)
    point = profile[hot][1]
    yield Diagnostic(
        "FLOW004", "info",
        f"pressure hotspot: Maxlive {peak} is reached in block {hot} "
        f"(point {point})",
        where=f"{hot}:{point}", obj=func.name,
        detail={
            "maxlive": peak, "block": hot, "point": point,
            "profile": {n: p for n, (p, _) in profile.items()},
        },
    )
