"""Graph substrate: interference graphs, chordality, colourability.

Public surface of the graph layer.  The coalescing algorithms in
:mod:`repro.coalescing` and the reductions in :mod:`repro.reductions`
are built entirely on these primitives.
"""

from .graph import Graph, Vertex
from .dense import DenseGraph
from .interference import (
    Coalescing,
    InterferenceGraph,
    coalescing_from_mapping,
)
from .chordal import (
    CliqueTree,
    chordal_coloring,
    clique_number_chordal,
    clique_tree,
    is_chordal,
    is_perfect_elimination_ordering,
    make_chordal,
    maximal_cliques_chordal,
    maximum_cardinality_search,
    maximum_cardinality_search_dict,
    perfect_elimination_ordering,
    simplicial_vertices,
    verify_clique_tree,
)
from .coloring import (
    chromatic_number,
    dsatur_coloring,
    greedy_coloring,
    greedy_coloring_dict,
    is_k_colorable,
    k_coloring_exact,
    verify_coloring,
)
from .greedy import (
    coloring_number,
    dense_subgraph_witness,
    greedy_elimination_order,
    greedy_elimination_order_dict,
    greedy_k_coloring,
    is_greedy_k_colorable,
    is_greedy_k_colorable_dict,
    smallest_last_order,
)
from . import dense, generators, interval, io, perfect

__all__ = [
    "Graph",
    "Vertex",
    "DenseGraph",
    "InterferenceGraph",
    "Coalescing",
    "coalescing_from_mapping",
    "CliqueTree",
    "chordal_coloring",
    "clique_number_chordal",
    "clique_tree",
    "is_chordal",
    "is_perfect_elimination_ordering",
    "make_chordal",
    "maximal_cliques_chordal",
    "maximum_cardinality_search",
    "maximum_cardinality_search_dict",
    "perfect_elimination_ordering",
    "simplicial_vertices",
    "verify_clique_tree",
    "chromatic_number",
    "dsatur_coloring",
    "greedy_coloring",
    "greedy_coloring_dict",
    "is_k_colorable",
    "k_coloring_exact",
    "verify_coloring",
    "coloring_number",
    "dense_subgraph_witness",
    "greedy_elimination_order",
    "greedy_elimination_order_dict",
    "greedy_k_coloring",
    "is_greedy_k_colorable",
    "is_greedy_k_colorable_dict",
    "smallest_last_order",
    "dense",
    "generators",
    "interval",
    "io",
    "perfect",
]
