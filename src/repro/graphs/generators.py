"""Graph generators used by tests, examples, and benchmarks.

Includes the paper's own gadgets:

* :func:`permutation_gadget` — Figure 3 (left): the interference/affinity
  pattern of a parallel permutation of n values, on which local
  conservative rules (Briggs, George) fail while simultaneous coalescing
  is safe;
* :func:`incremental_trap_gadget` — Figure 3 (right): a graph that stays
  greedy-3-colorable if *both* affinities (a, b) and (a, c) are
  coalesced, but not if only one is;
* :func:`augment_with_clique` — Property 2: add a p-clique connected to
  everything, lifting k-colourability/chordality/greedy-k-colorability
  from k to k + p.

Plus standard random families (Erdős–Rényi, random chordal via subtrees
of a random tree, random interval graphs).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .graph import Graph, Vertex
from .interference import InterferenceGraph


def resolve_rng(
    rng: Optional[random.Random],
    seed: Optional[int],
    who: str,
) -> random.Random:
    """Resolve the ``rng``/``seed`` pair every random generator takes.

    Exactly one of the two must be given.  The generators used to fall
    back to ``random.Random(0)`` silently, which made two "independent"
    corpus shards generate *identical* instances — a footgun the
    :mod:`repro.engine` task specs must never hit, so the default is
    now an error rather than a fixed seed.
    """
    if rng is not None:
        if seed is not None:
            raise ValueError(f"{who}: pass either rng= or seed=, not both")
        return rng
    if seed is None:
        raise ValueError(
            f"{who}: pass rng= or seed= explicitly (the old silent "
            "random.Random(0) default made independent corpora identical)"
        )
    return random.Random(seed)


def random_graph(
    n: int,
    p: float,
    rng: Optional[random.Random] = None,
    prefix: str = "v",
    seed: Optional[int] = None,
) -> Graph:
    """Erdős–Rényi G(n, p) over vertices ``prefix0 .. prefix{n-1}``.

    Randomness must be explicit: pass ``rng=`` or ``seed=`` (see
    :func:`resolve_rng`).
    """
    rng = resolve_rng(rng, seed, "random_graph")
    g = Graph(vertices=[f"{prefix}{i}" for i in range(n)])
    names = list(g.vertices)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(names[i], names[j])
    return g


def random_chordal_graph(
    n: int,
    max_clique: int,
    rng: Optional[random.Random] = None,
    prefix: str = "v",
    seed: Optional[int] = None,
) -> Graph:
    """A random chordal graph as the intersection graph of subtrees.

    Builds a random tree with ``2 n`` nodes and, for each vertex, grows a
    random connected subtree; two vertices are adjacent iff their
    subtrees intersect (the Golumbic Thm 4.8 characterization, which is
    also how SSA live ranges sit on the dominance tree).  ``max_clique``
    caps how many subtrees may cover one tree node, bounding ω(G).
    Randomness must be explicit: pass ``rng=`` or ``seed=``.
    """
    rng = resolve_rng(rng, seed, "random_chordal_graph")
    if n == 0:
        return Graph()
    t = max(1, 2 * n)
    tree_adj: Dict[int, List[int]] = {0: []}
    for node in range(1, t):
        parent = rng.randrange(node)
        tree_adj.setdefault(node, []).append(parent)
        tree_adj[parent].append(node)
    load = [0] * t  # how many subtrees cover each tree node
    subtrees: List[List[int]] = []
    for _ in range(n):
        candidates = [x for x in range(t) if load[x] < max_clique]
        if not candidates:
            subtrees.append([])
            continue
        root = rng.choice(candidates)
        nodes = {root}
        frontier = [root]
        size = rng.randint(1, max(1, t // 3))
        while frontier and len(nodes) < size:
            x = frontier.pop(rng.randrange(len(frontier)))
            for y in tree_adj[x]:
                if y not in nodes and load[y] < max_clique and rng.random() < 0.7:
                    nodes.add(y)
                    frontier.append(y)
        for x in nodes:
            load[x] += 1
        subtrees.append(sorted(nodes))
    g = Graph(vertices=[f"{prefix}{i}" for i in range(n)])
    for i in range(n):
        si = set(subtrees[i])
        for j in range(i + 1, n):
            if si & set(subtrees[j]):
                g.add_edge(f"{prefix}{i}", f"{prefix}{j}")
    return g


def random_interval_graph(
    n: int,
    span: int = 100,
    max_len: int = 20,
    rng: Optional[random.Random] = None,
    prefix: str = "v",
    seed: Optional[int] = None,
) -> Graph:
    """A random interval graph (a chordal subclass; models straight-line
    code live ranges).  Randomness must be explicit: ``rng=`` or
    ``seed=``."""
    rng = resolve_rng(rng, seed, "random_interval_graph")
    intervals: List[Tuple[int, int]] = []
    for _ in range(n):
        a = rng.randrange(span)
        b = min(span, a + rng.randint(1, max_len))
        intervals.append((a, b))
    g = Graph(vertices=[f"{prefix}{i}" for i in range(n)])
    for i in range(n):
        ai, bi = intervals[i]
        for j in range(i + 1, n):
            aj, bj = intervals[j]
            if ai < bj and aj < bi:
                g.add_edge(f"{prefix}{i}", f"{prefix}{j}")
    return g


def cycle_graph(n: int, prefix: str = "c") -> Graph:
    """The n-cycle (chordless for n ≥ 4; the canonical non-chordal graph)."""
    g = Graph(vertices=[f"{prefix}{i}" for i in range(n)])
    for i in range(n):
        g.add_edge(f"{prefix}{i}", f"{prefix}{(i + 1) % n}")
    return g


def complete_graph(n: int, prefix: str = "k") -> Graph:
    """The complete graph K_n."""
    g = Graph(vertices=[f"{prefix}{i}" for i in range(n)])
    names = list(g.vertices)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(names[i], names[j])
    return g


def augment_with_clique(graph: Graph, p: int, prefix: str = "aug") -> Graph:
    """Property 2's construction: add a clique of ``p`` new vertices, each
    adjacent to every original vertex.

    Lifts: k-colourable ↔ (k+p)-colourable, chordal ↔ chordal, and
    greedy-k-colorable ↔ greedy-(k+p)-colorable.
    """
    g = graph.copy()
    new = [f"{prefix}{i}" for i in range(p)]
    for name in new:
        if name in graph:
            raise ValueError(f"augmentation vertex {name!r} already present")
    originals = list(graph.vertices)
    for i, name in enumerate(new):
        g.add_vertex(name)
        for other in new[:i]:
            g.add_edge(name, other)
        for v in originals:
            g.add_edge(name, v)
    return g


# ----------------------------------------------------------------------
# paper gadgets (Figure 3)
# ----------------------------------------------------------------------
def permutation_gadget(n: int) -> InterferenceGraph:
    """Figure 3 (left), generalized from 4 to ``n``.

    A parallel permutation of ``n`` values: sources ``u1..un`` are
    simultaneously live before the copies (an n-clique), targets
    ``v1..vn`` simultaneously live after (another n-clique), and each
    move contributes the affinity ``(ui, vi)``.

    Coalescing all ``n`` moves simultaneously yields K_n — fine for any
    k ≥ n.  But coalescing one move at a time creates a vertex of degree
    2(n-1) (for n = 4 and k = 6, exactly the paper's example), which is
    where degree-based local rules give up once the neighbours' own
    degrees are ≥ k; see :func:`padded_permutation_gadget`.
    """
    us = [f"u{i}" for i in range(1, n + 1)]
    vs = [f"v{i}" for i in range(1, n + 1)]
    g = InterferenceGraph(vertices=us + vs)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(us[i], us[j])
            g.add_edge(vs[i], vs[j])
    for i in range(n):
        g.add_affinity(us[i], vs[i])
    return g


def padded_permutation_gadget(n: int, k: Optional[int] = None) -> InterferenceGraph:
    """The Figure 3 scenario completed with the "other vertices not shown".

    Starting from :func:`permutation_gadget`, attach degree-1 padding
    vertices so every ``ui``/``vi`` reaches degree ``k`` (default
    ``k = 2(n-1)``).  Then, with ``k`` registers:

    * coalescing all ``n`` moves at once keeps the graph
      greedy-k-colorable;
    * coalescing any single move produces a merged vertex with 2(n-1)
      neighbours, all of degree ≥ k, so both Briggs' and George's tests
      refuse it — even though the merge is actually safe (the
      brute-force "merge and re-check greedy-k-colorability" test
      accepts it).
    """
    if k is None:
        k = 2 * (n - 1)
    g = permutation_gadget(n)
    pad = 0
    for v in list(g.vertices):
        while g.degree(v) < k:
            g.add_edge(v, f"pad{pad}")
            pad += 1
    return g


def incremental_trap_gadget() -> InterferenceGraph:
    """Figure 3 (right): greedy-3-colorable; stays so if affinities
    (a, b) and (a, c) are *both* coalesced, but not if only one is.

    The paper asserts the existence of such a graph; this 7-vertex
    witness was found by exhaustive search over graphs on {a, b, c} plus
    four helpers (with a–b, a–c, b–c non-edges so that both coalescings
    are simultaneously legal) and is verified in the test suite:

    * the base graph is greedy-3-colorable;
    * merging only {a, b} — or only {a, c} — leaves a subgraph in which
      every vertex has degree ≥ 3, so the greedy scheme gets stuck;
    * merging both collapses b's and c's parallel edges into the common
      neighbours, and the elimination goes through again.

    This is the incremental trap: a conservative one-affinity-at-a-time
    strategy refuses both moves, yet coalescing the *set* is safe —
    motivating the "affinities obtained by transitivity" remark.
    """
    g = InterferenceGraph(vertices=["a", "b", "c", "p", "q", "r", "s"])
    edges = [
        ("a", "r"), ("a", "s"),
        ("b", "p"), ("b", "q"), ("b", "s"),
        ("c", "p"), ("c", "q"), ("c", "r"),
        ("p", "q"), ("p", "r"), ("p", "s"),
    ]
    for x, y in edges:
        g.add_edge(x, y)
    g.add_affinity("a", "b")
    g.add_affinity("a", "c")
    return g
