"""Greedy-k-colorability (Chaitin's simplification scheme).

Section 2.2 of the paper: a graph is *greedy-k-colorable* iff repeatedly
removing some vertex of degree < k empties the graph.  The removal order
(in reverse) then yields a k-colouring greedily.  The smallest k for
which this works is the colouring number col(G) = 1 + max over subgraphs
of the minimum degree, computed by the smallest-last order.

These routines are the workhorse of the conservative brute-force test
("merge, then check greedy-k-colorability in linear time") and of the
optimistic de-coalescing phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs import EDGES_SCANNED, NULL_TRACER, Tracer
from . import dense as _dense
from .dense import DenseGraph
from .graph import Graph, Vertex


def greedy_elimination_order(
    graph: Graph, k: int, tracer: Tracer = NULL_TRACER
) -> Tuple[List[Vertex], bool]:
    """Run Chaitin's elimination scheme with threshold ``k``.

    Returns ``(order, success)``: the vertices removed, in removal order,
    and whether the graph was fully eliminated.  The order in which
    candidates are picked does not affect success (the scheme is
    confluent — Section 2.2).  Routed through the dense bitset kernel
    (:func:`repro.graphs.dense.greedy_elimination_order`); the dict
    reference :func:`greedy_elimination_order_dict` remains the
    benchmark baseline.
    """
    dg = DenseGraph.from_graph(graph)
    order, success = _dense.greedy_elimination_order(dg, k, tracer=tracer)
    return [dg.names[i] for i in order], success


def greedy_elimination_order_dict(
    graph: Graph, k: int, tracer: Tracer = NULL_TRACER
) -> Tuple[List[Vertex], bool]:
    """The dict-of-set elimination reference implementation, O(V+E).

    Kept as the benchmark baseline (``repro bench snapshot``) and the
    equivalence oracle for the dense kernel.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    counting = tracer.enabled
    degree: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices}
    removed: Dict[Vertex, bool] = {v: False for v in graph.vertices}
    worklist: List[Vertex] = [v for v, d in degree.items() if d < k]
    order: List[Vertex] = []
    while worklist:
        v = worklist.pop()
        if removed[v] or degree[v] >= k:
            continue
        removed[v] = True
        order.append(v)
        if counting:
            tracer.count(EDGES_SCANNED, graph.degree(v))
        for u in graph.neighbors_view(v):
            if not removed[u]:
                degree[u] -= 1
                if degree[u] == k - 1:
                    worklist.append(u)
    return order, len(order) == len(graph)


def is_greedy_k_colorable(
    graph: Graph, k: int, tracer: Tracer = NULL_TRACER
) -> bool:
    """True iff the elimination scheme with threshold ``k`` empties G.

    Runs on the dense bitset kernel; by confluence the verdict is
    identical to the dict reference (:func:`is_greedy_k_colorable_dict`).
    """
    _, success = greedy_elimination_order(graph, k, tracer=tracer)
    return success


def is_greedy_k_colorable_dict(
    graph: Graph, k: int, tracer: Tracer = NULL_TRACER
) -> bool:
    """Dict-of-set reference for :func:`is_greedy_k_colorable`."""
    _, success = greedy_elimination_order_dict(graph, k, tracer=tracer)
    return success


def greedy_k_coloring(graph: Graph, k: int) -> Optional[Dict[Vertex, int]]:
    """A k-colouring obtained by the greedy scheme, or None.

    Colours vertices in reverse elimination order, giving each the
    smallest colour unused among already-coloured neighbours; possible
    because each vertex had < k neighbours remaining when removed.
    Both phases run on the dense bitset kernels.
    """
    dg = DenseGraph.from_graph(graph)
    coloring = _dense.greedy_k_coloring(dg, k)
    if coloring is None:
        return None
    return {dg.names[i]: c for i, c in coloring.items()}


def smallest_last_order(graph: Graph) -> List[Vertex]:
    """A smallest-last ordering x1, ..., xn.

    x_i has minimum degree in the subgraph after removing x1..x_{i-1}.
    Lazy-heap implementation, O((V+E) log V).
    """
    import heapq

    degree: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices}
    index = {v: i for i, v in enumerate(graph.vertices)}
    heap = [(d, index[v], v) for v, d in degree.items()]
    heapq.heapify(heap)
    removed: Dict[Vertex, bool] = {v: False for v in graph.vertices}
    order: List[Vertex] = []
    while heap:
        d, _, v = heapq.heappop(heap)
        if removed[v] or d != degree[v]:
            continue
        removed[v] = True
        order.append(v)
        for u in graph.neighbors_view(v):
            if not removed[u]:
                degree[u] -= 1
                heapq.heappush(heap, (degree[u], index[u], u))
    return order


def coloring_number(graph: Graph) -> int:
    """col(G) = 1 + max_i of the min degree along a smallest-last order.

    By Section 2.2, G is greedy-k-colorable iff k ≥ col(G); equivalently
    col(G) - 1 is the degeneracy: the maximum over subgraphs G' of the
    minimum degree of G'.  Returns 0 for the empty graph.
    """
    if len(graph) == 0:
        return 0
    order = smallest_last_order(graph)
    degree: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices}
    removed: Dict[Vertex, bool] = {v: False for v in graph.vertices}
    best = 0
    for v in order:
        best = max(best, degree[v])
        removed[v] = True
        for u in graph.neighbors_view(v):
            if not removed[u]:
                degree[u] -= 1
    return best + 1


def dense_subgraph_witness(graph: Graph, k: int) -> Optional[List[Vertex]]:
    """A witness that G is not greedy-k-colorable, or None.

    Returns the vertex set left over by the elimination scheme: a
    subgraph in which every vertex has degree ≥ k (the characterization
    at the end of Section 2.2).
    """
    order, success = greedy_elimination_order(graph, k)
    if success:
        return None
    eliminated = set(order)
    return [v for v in graph.vertices if v not in eliminated]
