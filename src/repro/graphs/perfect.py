"""Perfect-graph utilities (Section 2.2).

The paper motivates chordal graphs through perfect graphs: "G is
perfect if each induced subgraph G' satisfies χ(G') = ω(G')"; interval,
path, and chordal graphs are perfect, and perfect graphs can be
coloured in polynomial time.  These routines make the definitions
executable for the (small) instances the tests use:

* :func:`is_perfect_brute` — the literal definition, exponential;
* :func:`odd_holes` / :func:`is_berge` — the strong perfect graph
  theorem's characterization (no odd hole in G or its complement),
  giving an independent check for small graphs;
* :func:`max_clique_exact` / :func:`chromatic_equals_clique` helpers.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Set, Tuple

from .coloring import chromatic_number
from .graph import Graph, Vertex


def max_clique_exact(graph: Graph) -> Set[Vertex]:
    """A maximum clique by branch and bound (small graphs only)."""
    best: List[Set[Vertex]] = [set()]
    order = sorted(graph.vertices, key=graph.degree, reverse=True)

    def expand(clique: Set[Vertex], candidates: List[Vertex]) -> None:
        if len(clique) + len(candidates) <= len(best[0]):
            return
        if not candidates:
            if len(clique) > len(best[0]):
                best[0] = set(clique)
            return
        v = candidates[0]
        rest = candidates[1:]
        # branch: include v
        expand(
            clique | {v},
            [u for u in rest if graph.has_edge(u, v)],
        )
        # branch: exclude v
        expand(clique, rest)

    expand(set(), order)
    return best[0]


def clique_number_exact(graph: Graph) -> int:
    """ω(G) by exact search."""
    return len(max_clique_exact(graph))


def chromatic_equals_clique(graph: Graph) -> bool:
    """χ(G) == ω(G)?  (Both computed exactly.)"""
    return chromatic_number(graph) == clique_number_exact(graph)


def is_perfect_brute(graph: Graph, max_vertices: int = 10) -> bool:
    """The literal definition: χ = ω on *every* induced subgraph.

    Exponential in |V|; refuses graphs above ``max_vertices``.
    """
    vertices = list(graph.vertices)
    if len(vertices) > max_vertices:
        raise ValueError(
            f"brute perfection check limited to {max_vertices} vertices"
        )
    for r in range(1, len(vertices) + 1):
        for subset in combinations(vertices, r):
            sub = graph.subgraph(subset)
            if not chromatic_equals_clique(sub):
                return False
    return True


def chordless_cycles(graph: Graph, min_length: int = 4) -> Iterator[List[Vertex]]:
    """Enumerate chordless (induced) cycles of length ≥ ``min_length``.

    Each cycle is yielded once (up to rotation/reflection) as a vertex
    list.  Exponential; intended for small graphs and tests.
    """
    vertices = list(graph.vertices)
    position = {v: i for i, v in enumerate(vertices)}

    def extend(path: List[Vertex]) -> Iterator[List[Vertex]]:
        first, last = path[0], path[-1]
        for nxt in sorted(graph.neighbors_view(last), key=position.__getitem__):
            # the cycle's minimum-position vertex is the path start
            if position[nxt] <= position[first] or nxt in path:
                continue
            # induced: nxt may touch only the last path vertex (and
            # possibly first, when closing)
            if any(graph.has_edge(nxt, w) for w in path[1:-1]):
                continue
            if len(path) >= 2 and graph.has_edge(nxt, first):
                # nxt closes a cycle; extending past it would leave the
                # (nxt, first) edge as a chord.  Canonical direction:
                # the second vertex has smaller position than the last.
                if (
                    len(path) + 1 >= min_length
                    and position[path[1]] < position[nxt]
                ):
                    yield path + [nxt]
                continue
            yield from extend(path + [nxt])

    for v in vertices:
        yield from extend([v])


def odd_holes(graph: Graph) -> Iterator[List[Vertex]]:
    """Chordless odd cycles of length ≥ 5."""
    for cycle in chordless_cycles(graph, min_length=5):
        if len(cycle) % 2 == 1:
            yield cycle


def has_odd_hole(graph: Graph) -> bool:
    """True iff G contains a chordless odd cycle of length ≥ 5."""
    return next(odd_holes(graph), None) is not None


def is_berge(graph: Graph) -> bool:
    """No odd hole in G nor in its complement — by the strong perfect
    graph theorem (Chudnovsky–Robertson–Seymour–Thomas), equivalent to
    perfection.  Exponential; small graphs only."""
    return not has_odd_hole(graph) and not has_odd_hole(graph.complement())
