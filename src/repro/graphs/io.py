"""Graph interchange: DIMACS and Graphviz DOT.

DIMACS is the lingua franca of colouring benchmarks, so interference
graphs can be exchanged with external solvers; affinities are carried
in an extension line (``a U V WEIGHT``) that plain DIMACS readers skip
as a comment-free unknown (writers may also emit them as comments with
``strict=True``).  DOT output draws interferences as solid edges and
affinities as dashed ones — the paper's figure convention.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, TextIO, Tuple

from .graph import Graph, Vertex
from .interference import InterferenceGraph


def write_dimacs(
    graph: Graph,
    stream: TextIO,
    comment: Optional[str] = None,
    strict: bool = False,
) -> Dict[Vertex, int]:
    """Write a graph in DIMACS ``.col`` format.

    Vertices are numbered 1..n in insertion order; the mapping used is
    returned.  If the graph carries affinities, they are emitted as
    ``a u v w`` lines (or ``c a u v w`` comments when ``strict``).
    """
    index = {v: i + 1 for i, v in enumerate(graph.vertices)}
    if comment:
        for line in comment.splitlines():
            stream.write(f"c {line}\n")
    for v, i in index.items():
        stream.write(f"c node {i} = {v}\n")
    stream.write(f"p edge {len(index)} {graph.num_edges()}\n")
    for u, v in graph.edges():
        stream.write(f"e {index[u]} {index[v]}\n")
    if isinstance(graph, InterferenceGraph):
        prefix = "c a" if strict else "a"
        for u, v, w in graph.affinities():
            stream.write(f"{prefix} {index[u]} {index[v]} {w:g}\n")
    return index


def dumps_dimacs(graph: Graph, **kwargs: Any) -> str:
    """DIMACS text of a graph."""
    buf = io.StringIO()
    write_dimacs(graph, buf, **kwargs)
    return buf.getvalue()


def read_dimacs(stream: TextIO) -> InterferenceGraph:
    """Read a DIMACS ``.col`` file (with the affinity extension).

    ``c node I = NAME`` comments restore original vertex names; other
    comments are ignored.  Returns an :class:`InterferenceGraph` (which
    is a plain graph when no ``a`` lines are present).
    """
    names: Dict[int, str] = {}
    edges: List[Tuple[int, int]] = []
    affinities: List[Tuple[int, int, float]] = []
    declared: Optional[int] = None
    for lineno, raw in enumerate(stream, start=1):
        parts = raw.split()
        if not parts:
            continue
        kind = parts[0]
        if kind == "c":
            if len(parts) >= 5 and parts[1] == "node" and parts[3] == "=":
                names[int(parts[2])] = " ".join(parts[4:])
            elif len(parts) == 5 and parts[1] == "a":
                affinities.append(
                    (int(parts[2]), int(parts[3]), float(parts[4]))
                )
        elif kind == "p":
            if len(parts) != 4 or parts[1] not in ("edge", "col"):
                raise ValueError(f"line {lineno}: malformed problem line")
            declared = int(parts[2])
        elif kind == "e":
            if len(parts) != 3:
                raise ValueError(f"line {lineno}: malformed edge line")
            edges.append((int(parts[1]), int(parts[2])))
        elif kind == "a":
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed affinity line")
            affinities.append((int(parts[1]), int(parts[2]), float(parts[3])))
        else:
            raise ValueError(f"line {lineno}: unknown record {kind!r}")
    if declared is None:
        raise ValueError("missing DIMACS problem line")

    def name_of(i: int) -> str:
        return names.get(i, str(i))

    g = InterferenceGraph(
        vertices=[name_of(i) for i in range(1, declared + 1)]
    )
    for a, b in edges:
        g.add_edge(name_of(a), name_of(b))
    for a, b, w in affinities:
        g.add_affinity(name_of(a), name_of(b), w)
    return g


def loads_dimacs(text: str) -> InterferenceGraph:
    """Parse DIMACS from a string."""
    return read_dimacs(io.StringIO(text))


def to_dot(
    graph: Graph,
    name: str = "G",
    coloring: Optional[Dict[Vertex, int]] = None,
) -> str:
    """Render a graph (and its affinities) as Graphviz DOT.

    Interferences are solid, affinities dashed with their weight as a
    label — the paper's drawing convention.  An optional colouring maps
    to a small fill palette.
    """
    palette = [
        "lightblue", "lightpink", "lightgreen", "khaki",
        "plum", "lightsalmon", "lightcyan", "wheat",
    ]
    lines = [f"graph {name} {{", "  node [style=filled];"]
    for v in graph.vertices:
        attrs = []
        if coloring is not None and v in coloring:
            attrs.append(
                f'fillcolor="{palette[coloring[v] % len(palette)]}"'
            )
        else:
            attrs.append('fillcolor="white"')
        lines.append(f'  "{v}" [{", ".join(attrs)}];')
    for u, v in graph.edges():
        lines.append(f'  "{u}" -- "{v}";')
    if isinstance(graph, InterferenceGraph):
        for u, v, w in graph.affinities():
            lines.append(
                f'  "{u}" -- "{v}" [style=dashed, label="{w:g}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
