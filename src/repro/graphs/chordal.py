"""Chordal-graph toolkit.

Chordal graphs are central to the paper: the interference graph of a
strict SSA program is chordal (Theorem 1), a k-colorable chordal graph is
greedy-k-colorable (Property 1), and incremental conservative coalescing
is polynomial on chordal graphs (Theorem 5, which needs the clique-tree
/ subtree representation of Golumbic Thm 4.8).

Algorithms here:

* maximum-cardinality search (MCS) producing a perfect elimination
  ordering when the graph is chordal — O(V+E);
* chordality test by verifying the MCS order is a PEO — O(V+E);
* maximal cliques of a chordal graph from a PEO — O(V+E) cliques;
* clique tree: a tree on the maximal cliques such that for every vertex
  the cliques containing it form a subtree (the representation used by
  Theorem 5);
* simplicial vertices;
* optimal colouring of a chordal graph (greedy along the reverse PEO),
  which uses exactly ω(G) colours.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..obs import EDGES_SCANNED, NULL_TRACER, Tracer
from .dense import DenseGraph
from .dense import mcs_order as _dense_mcs_order
from .graph import Graph, Vertex


def maximum_cardinality_search(
    graph: Graph, tracer: Tracer = NULL_TRACER
) -> List[Vertex]:
    """An MCS order of the vertices.

    Repeatedly pick an unvisited vertex with the most visited neighbours.
    For chordal graphs the *reverse* of this order is a perfect
    elimination ordering.  Runs on the dense bitset kernel
    (:func:`repro.graphs.dense.mcs_order`), which produces the exact
    order of the dict reference implementation
    (:func:`maximum_cardinality_search_dict`) — same lazy heap, same
    insertion-order tie-break — at a fraction of the scan work.
    """
    dense = DenseGraph.from_graph(graph)
    return [dense.names[i] for i in _dense_mcs_order(dense, tracer=tracer)]


def maximum_cardinality_search_dict(
    graph: Graph, tracer: Tracer = NULL_TRACER
) -> List[Vertex]:
    """The dict-of-set MCS reference implementation.

    Kept as the benchmark baseline (``repro bench snapshot``) and the
    equivalence oracle for the dense kernel.  O((V+E) log V) with a
    lazy heap.
    """
    counting = tracer.enabled
    weight: Dict[Vertex, int] = {v: 0 for v in graph.vertices}
    # heap of (-weight, tiebreak, vertex); lazy deletion via weight check
    heap: List[Tuple[int, int, Vertex]] = []
    order_index: Dict[Vertex, int] = {}
    for i, v in enumerate(graph.vertices):
        heapq.heappush(heap, (0, i, v))
        order_index[v] = i
    visited: Set[Vertex] = set()
    order: List[Vertex] = []
    while heap:
        neg_w, _, v = heapq.heappop(heap)
        if v in visited or -neg_w != weight[v]:
            continue
        visited.add(v)
        order.append(v)
        if counting:
            tracer.count(EDGES_SCANNED, graph.degree(v))
        for u in graph.neighbors_view(v):
            if u not in visited:
                weight[u] += 1
                heapq.heappush(heap, (-weight[u], order_index[u], u))
    return order


def is_perfect_elimination_ordering(graph: Graph, order: Sequence[Vertex]) -> bool:
    """Check that ``order`` is a perfect elimination ordering.

    ``order`` is read as an *elimination* order: for each vertex v, its
    neighbours occurring later in the order must form a clique.  Uses the
    classic follower trick (Golumbic) for an O(V+E) check instead of the
    quadratic direct definition.

    ``order`` must be a *permutation* of the vertex set: an order that
    omits, duplicates, or invents vertices is rejected (a partial order
    could otherwise pass the clique condition vacuously).
    """
    if len(order) != len(graph):
        return False
    position = {v: i for i, v in enumerate(order)}
    if len(position) != len(order):
        return False  # duplicated vertex
    for v in graph.vertices:
        if v not in position:
            return False
    for v in position:
        if v not in graph:
            return False
    for v in order:
        later = [u for u in graph.neighbors_view(v) if position[u] > position[v]]
        if not later:
            continue
        # the earliest later-neighbour must be adjacent to all the others
        first = min(later, key=position.__getitem__)
        rest = set(later) - {first}
        if not rest <= graph.neighbors_view(first):
            return False
    return True


def perfect_elimination_ordering(graph: Graph) -> Optional[List[Vertex]]:
    """A PEO of ``graph``, or None if the graph is not chordal."""
    order = list(reversed(maximum_cardinality_search(graph)))
    if is_perfect_elimination_ordering(graph, order):
        return order
    return None


def is_chordal(graph: Graph) -> bool:
    """True iff every cycle of length ≥ 4 has a chord."""
    return perfect_elimination_ordering(graph) is not None


def simplicial_vertices(graph: Graph) -> List[Vertex]:
    """All vertices whose neighbourhood is a clique.

    Every chordal graph has at least one (and, unless complete, at least
    two) simplicial vertices; Property 1's proof peels them off.
    """
    return [v for v in graph.vertices if graph.is_clique(graph.neighbors_view(v))]


def maximal_cliques_chordal(graph: Graph) -> List[FrozenSet[Vertex]]:
    """The maximal cliques of a chordal graph.

    From a PEO: the candidate cliques are v plus its later neighbours;
    keep those not strictly contained in another candidate.  A chordal
    graph has at most |V| maximal cliques.  Raises ``ValueError`` on a
    non-chordal input.
    """
    order = perfect_elimination_ordering(graph)
    if order is None:
        raise ValueError("graph is not chordal")
    position = {v: i for i, v in enumerate(order)}
    later: Dict[Vertex, List[Vertex]] = {
        v: [u for u in graph.neighbors_view(v) if position[u] > position[v]]
        for v in order
    }
    # Blair–Peyton criterion: the candidate {v} ∪ later(v) is NOT maximal
    # iff some earlier u has v = min(later(u)) and |later(u)| - 1 ≥
    # |later(v)| (then later(u) \ {v} ⊆ later(v) forces containment).
    not_maximal: Set[Vertex] = set()
    for u in order:
        if not later[u]:
            continue
        first = min(later[u], key=position.__getitem__)
        if len(later[u]) - 1 >= len(later[first]):
            not_maximal.add(first)
    return [
        frozenset({v} | set(later[v])) for v in order if v not in not_maximal
    ]


def clique_number_chordal(graph: Graph) -> int:
    """ω(G) for a chordal graph (0 for the empty graph)."""
    if len(graph) == 0:
        return 0
    return max(len(c) for c in maximal_cliques_chordal(graph))


def chordal_coloring(graph: Graph) -> Dict[Vertex, int]:
    """An optimal colouring of a chordal graph using ω(G) colours.

    Greedy along the reverse of a PEO (i.e. along the MCS order): when a
    vertex is coloured, its already-coloured neighbours form a clique, so
    the smallest missing colour is < ω(G).  Raises ``ValueError`` on a
    non-chordal input.
    """
    from .coloring import greedy_coloring

    order = perfect_elimination_ordering(graph)
    if order is None:
        raise ValueError("graph is not chordal")
    return greedy_coloring(graph, order=list(reversed(order)))


# ----------------------------------------------------------------------
# clique tree / subtree representation (Golumbic Thm 4.8)
# ----------------------------------------------------------------------
@dataclass
class CliqueTree:
    """A clique tree of a chordal graph.

    ``cliques[i]`` is the i-th maximal clique (a frozenset of vertices);
    ``edges`` are pairs of clique indices forming a tree (a forest when
    the graph is disconnected); ``subtree[v]`` is the set of clique
    indices containing vertex v — always connected in the tree (the
    subtree :math:`T_v` of the paper's Theorem 5 proof).
    """

    cliques: List[FrozenSet[Vertex]]
    edges: List[Tuple[int, int]]
    subtree: Dict[Vertex, Set[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.subtree:
            for i, clique in enumerate(self.cliques):
                for v in clique:
                    self.subtree.setdefault(v, set()).add(i)

    def adjacency(self) -> Dict[int, Set[int]]:
        """Tree adjacency over clique indices."""
        adj: Dict[int, Set[int]] = {i: set() for i in range(len(self.cliques))}
        for a, b in self.edges:
            adj[a].add(b)
            adj[b].add(a)
        return adj

    def path(self, start: int, end: int) -> Optional[List[int]]:
        """The unique tree path between two clique nodes (None if
        disconnected)."""
        if start == end:
            return [start]
        adj = self.adjacency()
        prev: Dict[int, int] = {start: start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if y not in prev:
                    prev[y] = x
                    if y == end:
                        path = [end]
                        while path[-1] != start:
                            path.append(prev[path[-1]])
                        path.reverse()
                        return path
                    stack.append(y)
        return None


def clique_tree(graph: Graph) -> CliqueTree:
    """Build a clique tree of a chordal graph.

    Maximum-weight spanning tree on the clique-intersection graph, where
    the weight of (C_i, C_j) is |C_i ∩ C_j|; by the classical result this
    yields a tree with the induced-subtree property for every vertex.
    Raises ``ValueError`` on a non-chordal input.
    """
    cliques = maximal_cliques_chordal(graph)
    n = len(cliques)
    if n == 0:
        return CliqueTree(cliques=[], edges=[])
    # candidate edges between cliques sharing at least one vertex
    by_vertex: Dict[Vertex, List[int]] = {}
    for i, clique in enumerate(cliques):
        for v in clique:
            by_vertex.setdefault(v, []).append(i)
    candidates: Dict[Tuple[int, int], int] = {}
    for indices in by_vertex.values():
        for a in range(len(indices)):
            for b in range(a + 1, len(indices)):
                i, j = indices[a], indices[b]
                key = (i, j) if i < j else (j, i)
                candidates[key] = candidates.get(key, 0) + 1
    # Kruskal on -weight
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    edges: List[Tuple[int, int]] = []
    for (i, j), _w in sorted(candidates.items(), key=lambda kv: -kv[1]):
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj
            edges.append((i, j))
    return CliqueTree(cliques=cliques, edges=edges)


def verify_clique_tree(graph: Graph, tree: CliqueTree) -> bool:
    """Check the induced-subtree property: for every vertex, the cliques
    containing it form a connected subtree.  Used by tests."""
    adj = tree.adjacency()
    for v, nodes in tree.subtree.items():
        if v not in graph:
            return False
        nodes = set(nodes)
        if not nodes:
            return False
        start = next(iter(nodes))
        seen = {start}
        stack = [start]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if y in nodes and y not in seen:
                    seen.add(y)
                    stack.append(y)
        if seen != nodes:
            return False
    return True


def make_chordal(graph: Graph) -> Graph:
    """A minimal-ish chordal supergraph (fill-in) of ``graph``.

    Eliminates vertices in minimum-degree order, turning each
    neighbourhood into a clique.  Not minimum fill-in (that is
    NP-complete) but a standard heuristic; used by generators and by the
    optimistic-reduction chordalization checks.
    """
    filled = graph.copy()
    work = graph.copy()
    while len(work):
        v = min(work.vertices, key=work.degree)
        nbrs = list(work.neighbors_view(v))
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                if not work.has_edge(nbrs[i], nbrs[j]):
                    work.add_edge(nbrs[i], nbrs[j])
                    filled.add_edge(nbrs[i], nbrs[j])
        work.remove_vertex(v)
    return filled
