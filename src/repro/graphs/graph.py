"""Core undirected graph used throughout the library.

The paper's objects are interference graphs: undirected, simple (no loops,
no multi-edges), with vertices standing for live ranges.  This module
provides the plain structural graph; :mod:`repro.graphs.interference`
layers affinities (move edges) on top of it.

The representation is adjacency sets, the natural fit for the operations
the coalescing algorithms perform constantly: neighbourhood iteration,
degree queries, edge tests, and vertex merging.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Optional, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class Graph:
    """A simple undirected graph over hashable vertices.

    Edges are unordered pairs of distinct vertices.  Self-loops are
    rejected: in an interference graph a variable never interferes with
    itself, and a coalescing that would create a loop is illegal by
    definition (Section 2.1 of the paper).
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add ``v`` if not already present."""
        if v not in self._adj:
            self._adj[v] = set()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``(u, v)``, adding endpoints as needed."""
        if u == v:
            raise ValueError(f"self-loop on {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges."""
        for u in self._adj.pop(v):
            self._adj[u].discard(v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``(u, v)``; raise ``KeyError`` if absent."""
        if v not in self._adj.get(u, ()):
            raise KeyError(f"no edge ({u!r}, {v!r})")
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Iterable[Vertex]:
        """All vertices, in insertion order."""
        return self._adj.keys()

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def num_edges(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> Iterator[Edge]:
        """Iterate over each edge exactly once.

        Vertices follow insertion order and neighbours are sorted by
        ``str``, so iteration is deterministic regardless of hash
        randomization.
        """
        seen: Set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v in sorted(nbrs, key=str):
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """True iff ``(u, v)`` is an edge."""
        return v in self._adj.get(u, ())

    def neighbors(self, v: Vertex) -> FrozenSet[Vertex]:
        """The neighbourhood of ``v`` as a frozen snapshot."""
        return frozenset(self._adj[v])

    def neighbors_view(self, v: Vertex) -> Set[Vertex]:
        """Live (mutable-by-graph) view of the adjacency set of ``v``.

        Cheaper than :meth:`neighbors`; callers must not mutate it and
        must not hold it across graph mutations.
        """
        return self._adj[v]

    def degree(self, v: Vertex) -> int:
        """Number of neighbours of ``v``."""
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Maximum degree over all vertices (0 for the empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """True iff the given vertices are pairwise adjacent."""
        vs = list(vertices)
        return all(
            self.has_edge(vs[i], vs[j])
            for i in range(len(vs))
            for j in range(i + 1, len(vs))
        )

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """An independent structural copy."""
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """The induced subgraph on ``keep``."""
        keep_set = set(keep)
        g = Graph()
        for v in keep_set:
            if v not in self._adj:
                raise KeyError(f"vertex {v!r} not in graph")
            g.add_vertex(v)
        for v in keep_set:
            for u in self._adj[v] & keep_set:
                g.add_edge(u, v)
        return g

    def merged(self, u: Vertex, v: Vertex, into: Optional[Vertex] = None) -> "Graph":
        """A new graph with ``u`` and ``v`` merged into one vertex.

        This is the coalescing merge of Section 2.1: the merged vertex is
        adjacent to every former neighbour of either endpoint.  Merging
        adjacent vertices is illegal (it would create a loop).

        The merged vertex is named ``into`` (default: ``u``).
        """
        if self.has_edge(u, v):
            raise ValueError(f"cannot merge interfering vertices {u!r}, {v!r}")
        if u not in self._adj or v not in self._adj:
            raise KeyError("both endpoints must be in the graph")
        name = u if into is None else into
        g = self.copy()
        g.merge_in_place(u, v, into=name)
        return g

    def merge_in_place(self, u: Vertex, v: Vertex, into: Optional[Vertex] = None) -> Vertex:
        """Merge ``v`` into ``u`` destructively; return the merged vertex.

        Same semantics as :meth:`merged` but mutates this graph, which is
        what the iterated coalescing loops want.
        """
        if self.has_edge(u, v):
            raise ValueError(f"cannot merge interfering vertices {u!r}, {v!r}")
        name = u if into is None else into
        nbrs = (self._adj[u] | self._adj[v]) - {u, v, name}
        self.remove_vertex(u)
        self.remove_vertex(v)
        self.add_vertex(name)
        for w in nbrs:
            self.add_edge(name, w)
        return name

    # ------------------------------------------------------------------
    # global structure
    # ------------------------------------------------------------------
    def connected_components(self) -> Iterator[Set[Vertex]]:
        """Yield the vertex sets of the connected components."""
        seen: Set[Vertex] = set()
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            stack = [start]
            while stack:
                x = stack.pop()
                for y in self._adj[x]:
                    if y not in component:
                        component.add(y)
                        stack.append(y)
            seen |= component
            yield component

    def complement(self) -> "Graph":
        """The complement graph on the same vertex set."""
        g = Graph(vertices=self._adj)
        vs = list(self._adj)
        for i, u in enumerate(vs):
            for v in vs[i + 1:]:
                if v not in self._adj[u]:
                    g.add_edge(u, v)
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(|V|={len(self)}, |E|={self.num_edges()})"
