"""Interval graphs (Section 2.2's third perfect family).

Straight-line code produces interval interference graphs — the class
local register allocation lives in (Belady, linear scan).  This module
recognizes them through the classical Lekkerkerker–Boland
characterization: a graph is an interval graph iff it is chordal and
contains no *asteroidal triple* (three pairwise non-adjacent vertices
such that every pair is joined by a path avoiding the closed
neighbourhood of the third).

The AT check is the O(n³·(V+E)) textbook version — fine for the graph
sizes the tests and benches use.  ``interval_model`` builds an explicit
interval representation from a clique tree path when the graph is an
interval graph, closing the loop (the model is validated by
re-deriving the graph from it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .chordal import clique_tree, is_chordal
from .graph import Graph, Vertex


def _reachable_avoiding(
    graph: Graph, start: Vertex, banned: Set[Vertex]
) -> Set[Vertex]:
    """Vertices reachable from ``start`` without entering ``banned``
    (``start`` must not be banned)."""
    seen = {start}
    stack = [start]
    while stack:
        x = stack.pop()
        for y in graph.neighbors_view(x):
            if y not in seen and y not in banned:
                seen.add(y)
                stack.append(y)
    return seen


def is_asteroidal_triple(
    graph: Graph, a: Vertex, b: Vertex, c: Vertex
) -> bool:
    """Check one triple: pairwise non-adjacent, and each pair connected
    by a path avoiding the third's closed neighbourhood."""
    triple = (a, b, c)
    for i in range(3):
        for j in range(i + 1, 3):
            if graph.has_edge(triple[i], triple[j]):
                return False
    for i in range(3):
        u, v = triple[(i + 1) % 3], triple[(i + 2) % 3]
        banned = set(graph.neighbors_view(triple[i])) | {triple[i]}
        if u in banned or v in banned:
            return False
        if v not in _reachable_avoiding(graph, u, banned):
            return False
    return True


def find_asteroidal_triple(graph: Graph) -> Optional[Tuple[Vertex, Vertex, Vertex]]:
    """Some asteroidal triple, or None.  Cubic in |V|."""
    vertices = sorted(graph.vertices, key=str)
    n = len(vertices)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = vertices[i], vertices[j]
            if graph.has_edge(a, b):
                continue
            for k in range(j + 1, n):
                c = vertices[k]
                if is_asteroidal_triple(graph, a, b, c):
                    return (a, b, c)
    return None


def is_interval_graph(graph: Graph) -> bool:
    """Lekkerkerker–Boland: interval ⟺ chordal ∧ AT-free."""
    if not is_chordal(graph):
        return False
    return find_asteroidal_triple(graph) is None


def interval_model(graph: Graph) -> Optional[Dict[Vertex, Tuple[int, int]]]:
    """An explicit interval representation, or None.

    For an interval graph the clique tree can be arranged as a *path*
    (consecutive cliques ordering); each vertex's interval is the range
    of clique positions containing it.  We search for a Hamiltonian
    path of the clique tree greedily from each leaf — sufficient for
    the clique trees our generators produce — and validate the model
    by re-deriving the graph, falling back to None when no ordering is
    found (callers treat that as "don't know", and the tests only rely
    on positive answers).
    """
    if len(graph) == 0:
        return {}
    if not is_chordal(graph):
        return None
    tree = clique_tree(graph)
    n = len(tree.cliques)
    adj = tree.adjacency()
    # try to lay the cliques out as a path (consecutive arrangement)
    order = _path_order(adj, n)
    if order is None:
        return None
    position = {node: i for i, node in enumerate(order)}
    model: Dict[Vertex, Tuple[int, int]] = {}
    for v, nodes in tree.subtree.items():
        spots = [position[t] for t in nodes]
        model[v] = (min(spots), max(spots))
    # validate: the model must re-derive exactly the input graph
    vs = sorted(graph.vertices, key=str)
    for i, u in enumerate(vs):
        for v in vs[i + 1:]:
            lu, hu = model[u]
            lv, hv = model[v]
            overlap = lu <= hv and lv <= hu
            if overlap != graph.has_edge(u, v):
                return None
    return model


def _path_order(adj: Dict[int, Set[int]], n: int) -> Optional[List[int]]:
    """A Hamiltonian path of a tree, if the tree *is* a path (possibly
    a forest of paths, concatenated)."""
    if n == 0:
        return []
    order: List[int] = []
    visited: Set[int] = set()
    for start in range(n):
        if start in visited or len(adj[start]) > 1:
            continue
        # walk the path from this endpoint
        prev: Optional[int] = None
        node: Optional[int] = start
        while node is not None:
            order.append(node)
            visited.add(node)
            nxt = [t for t in adj[node] if t != prev and t not in visited]
            if len(nxt) > 1:
                return None  # branching: not a path
            prev, node = node, (nxt[0] if nxt else None)
    if len(order) != n:
        # isolated nodes (degree 0) handled above via len(adj)==0<=1;
        # anything left means a cycle or branch
        return None
    return order
