"""Dense bitset graph kernels: the integer-indexed fast path.

The dict-of-set :class:`~repro.graphs.graph.Graph` is the right *API*
for the coalescing algorithms — hashable vertex names, cheap merges,
obvious code — but its inner loops pay a hash lookup per neighbour.
This module is the dense counterpart: vertices are interned to the
integer range ``0..n-1`` (in insertion order, so the mapping is stable
and reproducible) and each adjacency set becomes one Python ``int``
used as a bitmask.  Neighbourhood algebra then runs word-wise —
``adj[u] & ~visited`` prunes an entire 64-bit span per machine
operation — and ``popcount`` replaces per-element counting.

Everything here is lossless with respect to the dict representation:
:meth:`DenseGraph.from_graph` / :meth:`DenseGraph.to_graph` round-trip
exactly, and each kernel is the *same algorithm* as its dict reference
(same tie-breaking, same verdicts), so the public dict-based API can
route through this module without changing observable results.  The
equivalence is enforced by property tests (``tests/test_dense.py``).

Work accounting: kernels count :data:`~repro.obs.names.EDGES_SCANNED`
for every adjacency element actually visited and
:data:`~repro.obs.names.WORDS_MERGED` for every machine word processed
by a mask operation.  Counts measure the size of data consumed — never
early exits — so they are exact across runs; ``repro bench snapshot``
uses them to prove the dense kernels do strictly less work than the
dict baselines (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..obs import NULL_TRACER, Tracer
from ..obs.names import EDGES_SCANNED, WORDS_MERGED
from .graph import Graph, Vertex

#: Bits per accounting word.  CPython long arithmetic works on 30-bit
#: digits internally, but 64 is the honest machine-word unit the
#: ``WORDS_MERGED`` counter is defined against.
WORD_BITS = 64


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the set-bit indices of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _popcount(mask: int) -> int:
    """Number of set bits of ``mask``."""
    return mask.bit_count()


class DenseGraph:
    """An undirected graph over interned integer vertices.

    ``names[i]`` is the original vertex behind index ``i`` and
    ``index[v]`` its inverse; interning follows insertion order of the
    source graph, so two conversions of the same graph agree.  ``adj[i]``
    is the neighbourhood of ``i`` as a bitmask, ``deg[i]`` a maintained
    popcount of it, and ``alive`` the bitmask of vertices not yet
    removed by a merge (merging never reindexes — the dead slot just
    empties, keeping indices stable for the whole run).
    """

    __slots__ = ("names", "index", "adj", "deg", "alive", "words")

    def __init__(self, names: Sequence[Vertex] = ()) -> None:
        self.names: List[Vertex] = list(names)
        self.index: Dict[Vertex, int] = {v: i for i, v in enumerate(self.names)}
        if len(self.index) != len(self.names):
            raise ValueError("duplicate vertex names")
        n = len(self.names)
        self.adj: List[int] = [0] * n
        self.deg: List[int] = [0] * n
        self.alive: int = (1 << n) - 1
        self.words: int = max(1, (n + WORD_BITS - 1) // WORD_BITS)

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "DenseGraph":
        """Intern ``graph`` (insertion order) into a dense twin."""
        dense = cls(list(graph.vertices))
        index = dense.index
        adj = dense.adj
        for v in graph.vertices:
            i = index[v]
            mask = 0
            for u in graph.neighbors_view(v):
                mask |= 1 << index[u]
            adj[i] = mask
            dense.deg[i] = _popcount(mask)
        return dense

    def to_graph(self) -> Graph:
        """Materialize back to a dict-of-set :class:`Graph` (lossless)."""
        g = Graph(vertices=[self.names[i] for i in _iter_bits(self.alive)])
        for i in _iter_bits(self.alive):
            above = self.adj[i] >> (i + 1)
            for off in _iter_bits(above):
                g.add_edge(self.names[i], self.names[i + 1 + off])
        return g

    # ------------------------------------------------------------------
    # queries and mutation
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of interned slots (including dead ones)."""
        return len(self.names)

    def num_alive(self) -> int:
        """Number of live vertices."""
        return _popcount(self.alive)

    def num_edges(self) -> int:
        """Number of undirected edges among live vertices."""
        return sum(self.deg[i] for i in _iter_bits(self.alive)) // 2

    def has_edge(self, i: int, j: int) -> bool:
        """True iff live vertices ``i`` and ``j`` are adjacent."""
        return bool(self.adj[i] >> j & 1)

    def add_edge(self, i: int, j: int) -> None:
        """Add the undirected edge ``(i, j)`` between live vertices."""
        if i == j:
            raise ValueError(f"self-loop on index {i}")
        if not self.adj[i] >> j & 1:
            self.adj[i] |= 1 << j
            self.adj[j] |= 1 << i
            self.deg[i] += 1
            self.deg[j] += 1

    def copy(self) -> "DenseGraph":
        """An independent copy sharing the (immutable) interning."""
        dup = DenseGraph.__new__(DenseGraph)
        dup.names = self.names
        dup.index = self.index
        dup.adj = list(self.adj)
        dup.deg = list(self.deg)
        dup.alive = self.alive
        dup.words = self.words
        return dup

    def high_degree_mask(self, k: int) -> int:
        """Bitmask of live vertices with degree ≥ ``k``."""
        mask = 0
        deg = self.deg
        for i in _iter_bits(self.alive):
            if deg[i] >= k:
                mask |= 1 << i
        return mask

    def merge_in_place(self, i: int, j: int) -> int:
        """Merge vertex ``j`` into ``i`` (the coalescing merge).

        ``i`` keeps its index and absorbs ``j``'s neighbourhood; ``j``
        dies.  Merging adjacent vertices is illegal.  Returns the
        bitmask of *common* neighbours — exactly the vertices whose
        degree dropped by one, which callers maintaining a
        degree-threshold mask need (see
        :func:`repro.coalescing.conservative.conservative_coalesce`).
        """
        adj, deg = self.adj, self.deg
        bi, bj = 1 << i, 1 << j
        if adj[i] & bj:
            raise ValueError(
                f"cannot merge interfering vertices "
                f"{self.names[i]!r}, {self.names[j]!r}"
            )
        if not (self.alive & bi and self.alive & bj):
            raise KeyError("both endpoints must be alive")
        common = adj[i] & adj[j]
        gained = adj[j] & ~adj[i]
        for w in _iter_bits(common):
            adj[w] &= ~bj
            deg[w] -= 1
        for w in _iter_bits(gained):
            adj[w] = (adj[w] | bi) & ~bj
        adj[i] |= gained
        deg[i] = _popcount(adj[i])
        adj[j] = 0
        deg[j] = 0
        self.alive &= ~bj
        return common


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def mcs_order(dense: DenseGraph, tracer: Tracer = NULL_TRACER) -> List[int]:
    """Maximum-cardinality search over the dense graph.

    Same lazy-heap algorithm and tie-break (max visited-neighbour count,
    then smallest interned index) as the dict reference
    :func:`repro.graphs.chordal.maximum_cardinality_search_dict`, so the
    two produce *identical* orders.  The bitset win: each visit scans
    only the still-unvisited neighbours (``adj[v] & ~visited``), so
    every edge is walked once instead of twice.
    """
    counting = tracer.enabled
    weight = [0] * dense.n
    heap: List[Tuple[int, int]] = [(0, i) for i in _iter_bits(dense.alive)]
    heapq.heapify(heap)
    visited = 0
    order: List[int] = []
    adj = dense.adj
    words = dense.words
    while heap:
        neg_w, v = heapq.heappop(heap)
        bv = 1 << v
        if visited & bv or -neg_w != weight[v]:
            continue
        visited |= bv
        order.append(v)
        fresh = adj[v] & ~visited
        if counting:
            tracer.count(WORDS_MERGED, 2 * words)
            tracer.count(EDGES_SCANNED, _popcount(fresh))
        for u in _iter_bits(fresh):
            w = weight[u] + 1
            weight[u] = w
            heapq.heappush(heap, (-w, u))
    return order


def greedy_coloring(
    dense: DenseGraph,
    order: Optional[Sequence[int]] = None,
    tracer: Tracer = NULL_TRACER,
) -> Dict[int, int]:
    """First-fit colouring along ``order`` (default: index order).

    Identical colours to the dict reference
    :func:`repro.graphs.coloring.greedy_coloring_dict` on the same
    order.  Only already-coloured neighbours are visited — the
    ``adj[v] & colored`` mask prunes the rest word-wise — so the scan
    work is E instead of 2E.
    """
    counting = tracer.enabled
    if order is None:
        order = list(_iter_bits(dense.alive))
    color = [0] * dense.n
    colored = 0
    adj = dense.adj
    words = dense.words
    out: Dict[int, int] = {}
    for v in order:
        nb = adj[v] & colored
        if counting:
            tracer.count(WORDS_MERGED, words)
            tracer.count(EDGES_SCANNED, _popcount(nb))
        used = 0
        for u in _iter_bits(nb):
            used |= 1 << color[u]
        c = ((used + 1) & ~used).bit_length() - 1
        color[v] = c
        out[v] = c
        colored |= 1 << v
    return out


def greedy_elimination_order(
    dense: DenseGraph, k: int, tracer: Tracer = NULL_TRACER
) -> Tuple[List[int], bool]:
    """Chaitin's elimination scheme with threshold ``k`` (Section 2.2).

    Returns ``(order, success)`` like the dict reference
    :func:`repro.graphs.greedy.greedy_elimination_order_dict`; success
    is identical (the scheme is confluent), the order may differ in
    tie-breaking.  Each removal scans only the *remaining* neighbours.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    counting = tracer.enabled
    adj = dense.adj
    words = dense.words
    remaining = dense.alive
    degree = list(dense.deg)
    worklist = [i for i in _iter_bits(dense.alive) if degree[i] < k]
    order: List[int] = []
    while worklist:
        v = worklist.pop()
        bv = 1 << v
        if not remaining & bv or degree[v] >= k:
            continue
        remaining &= ~bv
        order.append(v)
        nb = adj[v] & remaining
        if counting:
            tracer.count(WORDS_MERGED, 2 * words)
            tracer.count(EDGES_SCANNED, _popcount(nb))
        for u in _iter_bits(nb):
            d = degree[u] - 1
            degree[u] = d
            if d == k - 1:
                worklist.append(u)
    return order, remaining == 0


def is_greedy_k_colorable(
    dense: DenseGraph, k: int, tracer: Tracer = NULL_TRACER
) -> bool:
    """True iff the elimination scheme with threshold ``k`` empties G."""
    _, success = greedy_elimination_order(dense, k, tracer=tracer)
    return success


def greedy_k_coloring(
    dense: DenseGraph, k: int, tracer: Tracer = NULL_TRACER
) -> Optional[Dict[int, int]]:
    """A k-colouring via the greedy scheme, or None if it gets stuck."""
    order, success = greedy_elimination_order(dense, k, tracer=tracer)
    if not success:
        return None
    coloring = greedy_coloring(dense, order=list(reversed(order)), tracer=tracer)
    if coloring and max(coloring.values()) >= k:
        raise AssertionError("greedy scheme produced an over-budget colour")
    return coloring


# ----------------------------------------------------------------------
# conservative tests (Section 4) on the dense representation
# ----------------------------------------------------------------------
def briggs_test(
    dense: DenseGraph,
    i: int,
    j: int,
    k: int,
    high: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """Briggs' conservative test; verdict-identical to the dict version.

    ``high`` is the degree-≥-k bitmask (recomputed when omitted; loops
    testing many pairs should maintain it incrementally).  Significant
    neighbours are counted with one popcount over ``union & high``,
    corrected per-element only for common neighbours of degree exactly
    ``k`` (whose merged degree drops below the threshold).
    """
    counting = tracer.enabled
    adj, deg, words = dense.adj, dense.deg, dense.words
    bi, bj = 1 << i, 1 << j
    if adj[i] & bj:
        return False
    if high is None:
        high = dense.high_degree_mask(k)
        if counting:
            tracer.count(EDGES_SCANNED, dense.num_alive())
    union = (adj[i] | adj[j]) & ~(bi | bj)
    significant = _popcount(union & high)
    if counting:
        tracer.count(WORDS_MERGED, 4 * words)
    borderline = adj[i] & adj[j] & high
    if counting:
        tracer.count(WORDS_MERGED, 2 * words)
        tracer.count(EDGES_SCANNED, _popcount(borderline))
    for w in _iter_bits(borderline):
        if deg[w] == k:
            significant -= 1
    return significant < k


def george_test(
    dense: DenseGraph,
    i: int,
    j: int,
    k: int,
    high: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """George's test (merge ``i`` into ``j``) as pure mask algebra.

    Safe iff no neighbour of ``i`` is simultaneously high-degree, not a
    neighbour of ``j``, and not ``j`` itself — one ANDNOT chain, zero
    per-element work.
    """
    counting = tracer.enabled
    adj, words = dense.adj, dense.words
    bi, bj = 1 << i, 1 << j
    if adj[i] & bj:
        return False
    if high is None:
        high = dense.high_degree_mask(k)
        if counting:
            tracer.count(EDGES_SCANNED, dense.num_alive())
    if counting:
        tracer.count(WORDS_MERGED, 3 * words)
    return not (adj[i] & high & ~adj[j] & ~bj)


def george_test_both(
    dense: DenseGraph,
    i: int,
    j: int,
    k: int,
    high: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """George's test tried in both directions."""
    return george_test(dense, i, j, k, high=high, tracer=tracer) or george_test(
        dense, j, i, k, high=high, tracer=tracer
    )


def george_extended_test(
    dense: DenseGraph,
    i: int,
    j: int,
    k: int,
    high: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """The Section-4 extension of George's rule, dense flavour.

    A blocker ``t`` (high-degree neighbour of ``i`` unknown to ``j``)
    is forgiven when it is itself removable — fewer than ``k`` of *its*
    neighbours are high-degree, one popcount per blocker.
    """
    counting = tracer.enabled
    adj, words = dense.adj, dense.words
    bi, bj = 1 << i, 1 << j
    if adj[i] & bj:
        return False
    if high is None:
        high = dense.high_degree_mask(k)
        if counting:
            tracer.count(EDGES_SCANNED, dense.num_alive())
    blockers = adj[i] & high & ~adj[j] & ~bj
    if counting:
        tracer.count(WORDS_MERGED, 3 * words)
        tracer.count(EDGES_SCANNED, _popcount(blockers))
    for t in _iter_bits(blockers):
        if counting:
            tracer.count(WORDS_MERGED, words)
        if _popcount(adj[t] & high) >= k:
            return False
    return True


def george_extended_test_both(
    dense: DenseGraph,
    i: int,
    j: int,
    k: int,
    high: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """The extended George test in both directions."""
    return george_extended_test(
        dense, i, j, k, high=high, tracer=tracer
    ) or george_extended_test(dense, j, i, k, high=high, tracer=tracer)


def briggs_george_test(
    dense: DenseGraph,
    i: int,
    j: int,
    k: int,
    high: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """The combined iterated-register-coalescing rule."""
    return briggs_test(dense, i, j, k, high=high, tracer=tracer) or george_test_both(
        dense, i, j, k, high=high, tracer=tracer
    )


def brute_force_test(
    dense: DenseGraph,
    i: int,
    j: int,
    k: int,
    high: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """Merge on a copy and re-check greedy-k-colorability.

    The dense copy is a flat list clone — no per-vertex set copies —
    which is what makes the paper's "merge then re-check in linear
    time" suggestion actually cheap enough to iterate.
    """
    if dense.adj[i] >> j & 1:
        return False
    if tracer.enabled:
        tracer.count(WORDS_MERGED, dense.n * dense.words)
    merged = dense.copy()
    merged.merge_in_place(i, j)
    return is_greedy_k_colorable(merged, k, tracer=tracer)


#: Dense conservative tests by name — mirrors
#: :data:`repro.coalescing.conservative.TESTS`.
DENSE_TESTS: Dict[str, Callable[..., bool]] = {
    "briggs": briggs_test,
    "george": george_test_both,
    "george_extended": george_extended_test_both,
    "briggs_george": briggs_george_test,
    "brute": brute_force_test,
}
