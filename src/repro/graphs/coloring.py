"""Graph colouring: heuristics and exact solvers.

Exact k-colourability is the oracle against which the paper's reductions
are tested (Theorem 3 turns k-colourability into conservative
coalescing; Theorem 4 asks for a k-colouring with one equality
constraint).  DSATUR provides both a good heuristic and the branching
order for the exact backtracking solver.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import EDGES_SCANNED, NULL_TRACER, Tracer
from .dense import DenseGraph
from .dense import greedy_coloring as _dense_greedy_coloring
from .graph import Graph, Vertex


def verify_coloring(graph: Graph, coloring: Dict[Vertex, int]) -> bool:
    """True iff ``coloring`` assigns every vertex a colour and no edge is
    monochromatic."""
    for v in graph.vertices:
        if v not in coloring:
            return False
    return all(coloring[u] != coloring[v] for u, v in graph.edges())


def greedy_coloring(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
    tracer: Tracer = NULL_TRACER,
) -> Dict[Vertex, int]:
    """First-fit colouring along ``order`` (default: insertion order).

    Routed through the dense bitset kernel
    (:func:`repro.graphs.dense.greedy_coloring`); first-fit along a
    fixed order is deterministic, so the colours are identical to the
    dict reference :func:`greedy_coloring_dict`.
    """
    dense = DenseGraph.from_graph(graph)
    idx_order = None if order is None else [dense.index[v] for v in order]
    colors = _dense_greedy_coloring(dense, order=idx_order, tracer=tracer)
    return {dense.names[i]: c for i, c in colors.items()}


def greedy_coloring_dict(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
    tracer: Tracer = NULL_TRACER,
) -> Dict[Vertex, int]:
    """The dict-of-set first-fit reference implementation.

    Kept as the benchmark baseline (``repro bench snapshot``) and the
    equivalence oracle for the dense kernel.
    """
    counting = tracer.enabled
    if order is None:
        order = list(graph.vertices)
    coloring: Dict[Vertex, int] = {}
    for v in order:
        if counting:
            tracer.count(EDGES_SCANNED, graph.degree(v))
        used = {coloring[u] for u in graph.neighbors_view(v) if u in coloring}
        c = 0
        while c in used:
            c += 1
        coloring[v] = c
    return coloring


def dsatur_coloring(graph: Graph) -> Dict[Vertex, int]:
    """DSATUR heuristic: colour the vertex of highest saturation first.

    Optimal on many structured graphs and a strong upper bound for the
    exact solver.
    """
    coloring: Dict[Vertex, int] = {}
    saturation: Dict[Vertex, Set[int]] = {v: set() for v in graph.vertices}
    uncolored: Set[Vertex] = set(graph.vertices)
    while uncolored:
        v = max(
            uncolored,
            key=lambda x: (len(saturation[x]), graph.degree(x), str(x)),
        )
        used = saturation[v]
        c = 0
        while c in used:
            c += 1
        coloring[v] = c
        uncolored.discard(v)
        for u in graph.neighbors_view(v):
            if u in uncolored:
                saturation[u].add(c)
    return coloring


def k_coloring_exact(
    graph: Graph,
    k: int,
    precolored: Optional[Dict[Vertex, int]] = None,
    same_color: Iterable[Tuple[Vertex, Vertex]] = (),
) -> Optional[Dict[Vertex, int]]:
    """An exact k-colouring by backtracking, or None if none exists.

    ``precolored`` pins colours of given vertices; ``same_color`` adds
    equality constraints (the incremental-coalescing question of
    Theorem 4: "is there a k-colouring with f(x) = f(y)?").  Equality
    constraints are handled by contracting the pairs first, which also
    detects immediate conflicts.

    Exponential worst case — intended for the small instances that the
    reduction tests and exact baselines use.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    precolored = dict(precolored or {})
    for v, c in precolored.items():
        if not 0 <= c < k:
            return None

    # contract same_color pairs
    rep: Dict[Vertex, Vertex] = {v: v for v in graph.vertices}

    def find(v: Vertex) -> Vertex:
        while rep[v] != v:
            rep[v] = rep[rep[v]]
            v = rep[v]
        return v

    for u, v in same_color:
        ru, rv = find(u), find(v)
        if ru != rv:
            rep[ru] = rv
    contracted = Graph(vertices={find(v) for v in graph.vertices})
    for u, v in graph.edges():
        ru, rv = find(u), find(v)
        if ru == rv:
            return None  # equality constraint conflicts with an edge
        contracted.add_edge(ru, rv)
    pinned: Dict[Vertex, int] = {}
    for v, c in precolored.items():
        r = find(v)
        if r in pinned and pinned[r] != c:
            return None
        pinned[r] = c

    solution = _backtrack_k_coloring(contracted, k, pinned)
    if solution is None:
        return None
    return {v: solution[find(v)] for v in graph.vertices}


def _backtrack_k_coloring(
    graph: Graph, k: int, pinned: Dict[Vertex, int]
) -> Optional[Dict[Vertex, int]]:
    """DSATUR-ordered backtracking with forward checking."""
    coloring: Dict[Vertex, int] = {}
    domains: Dict[Vertex, Set[int]] = {
        v: set(range(k)) for v in graph.vertices
    }
    for v, c in pinned.items():
        domains[v] = {c}
    order_pool: Set[Vertex] = set(graph.vertices)

    def propagate(v: Vertex, c: int, trail: List[Tuple[Vertex, int]]) -> bool:
        for u in graph.neighbors_view(v):
            if u not in coloring and c in domains[u]:
                domains[u].discard(c)
                trail.append((u, c))
                if not domains[u]:
                    return False
        return True

    def undo(trail: List[Tuple[Vertex, int]]) -> None:
        for u, c in trail:
            domains[u].add(c)

    def solve() -> bool:
        if not order_pool:
            return True
        # most-constrained vertex first; break ties by degree
        v = min(
            order_pool,
            key=lambda x: (len(domains[x]), -graph.degree(x)),
        )
        order_pool.discard(v)
        # symmetry breaking: with no pinned colours, palette colours are
        # interchangeable, so a fresh vertex never needs a colour index
        # larger than (max used so far) + 1
        used_max = max(coloring.values(), default=-1)
        for c in sorted(domains[v]):
            if not pinned and c > used_max + 1:
                break
            coloring[v] = c
            trail: List[Tuple[Vertex, int]] = []
            if propagate(v, c, trail) and solve():
                return True
            undo(trail)
            del coloring[v]
        order_pool.add(v)
        return False

    if any(not d for d in domains.values()):
        return None
    if solve():
        return coloring
    return None


def is_k_colorable(graph: Graph, k: int) -> bool:
    """Exact k-colourability test (exponential worst case)."""
    return k_coloring_exact(graph, k) is not None


def chromatic_number(graph: Graph) -> int:
    """χ(G), exactly, by binary search between clique bound and DSATUR."""
    if len(graph) == 0:
        return 0
    upper_coloring = dsatur_coloring(graph)
    upper = max(upper_coloring.values()) + 1
    lower = 1 if graph.num_edges() == 0 else 2
    # tighten the lower bound with a greedy clique
    clique = _greedy_clique(graph)
    lower = max(lower, len(clique))
    while lower < upper:
        mid = (lower + upper) // 2
        if is_k_colorable(graph, mid):
            upper = mid
        else:
            lower = mid + 1
    return lower


def _greedy_clique(graph: Graph) -> List[Vertex]:
    """A maximal clique grown greedily from the highest-degree vertex."""
    if len(graph) == 0:
        return []
    clique: List[Vertex] = []
    candidates = set(graph.vertices)
    while candidates:
        v = max(candidates, key=graph.degree)
        clique.append(v)
        candidates &= graph.neighbors_view(v)
    return clique
