"""Interference graphs with affinities.

An interference graph (Section 2.1 of the paper) is an undirected graph
whose vertices are variables/live ranges and whose edges are
*interferences*; on top of it, *affinities* record move instructions
between pairs of variables.  Coalescing an affinity ``(u, v)`` means
assigning ``u`` and ``v`` the same colour, which is only possible when
they do not interfere.

A :class:`Coalescing` is the function ``f`` of the paper: a partition of
the vertices into classes such that no class contains two interfering
vertices.  ``coalesced_graph`` builds :math:`G_f`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .graph import Graph, Vertex

Affinity = Tuple[Vertex, Vertex]


def _key(u: Vertex, v: Vertex) -> FrozenSet[Vertex]:
    return frozenset((u, v))


class InterferenceGraph(Graph):
    """A graph with a parallel set of weighted affinities.

    Affinities are unordered pairs of distinct vertices, each with a
    positive weight (the dynamic execution count of the move).  An
    affinity may coexist with an interference edge on the same pair —
    this happens in real programs (e.g. a move between variables that
    also interfere elsewhere); such an affinity is *frozen*: it can never
    be coalesced, but it still counts in the "not coalesced" cost.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Tuple[Vertex, Vertex]] = (),
        affinities: Iterable[Affinity] = (),
    ) -> None:
        super().__init__(vertices, edges)
        self._affinities: Dict[FrozenSet[Vertex], float] = {}
        for u, v in affinities:
            self.add_affinity(u, v)

    # ------------------------------------------------------------------
    # affinities
    # ------------------------------------------------------------------
    def add_affinity(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add (or re-weight, accumulating) the affinity ``(u, v)``."""
        if u == v:
            raise ValueError(f"affinity endpoints must differ, got {u!r}")
        if weight <= 0:
            raise ValueError(f"affinity weight must be positive, got {weight}")
        self.add_vertex(u)
        self.add_vertex(v)
        key = _key(u, v)
        self._affinities[key] = self._affinities.get(key, 0.0) + weight

    def remove_affinity(self, u: Vertex, v: Vertex) -> None:
        """Remove the affinity ``(u, v)``; raise ``KeyError`` if absent."""
        del self._affinities[_key(u, v)]

    def has_affinity(self, u: Vertex, v: Vertex) -> bool:
        """True iff there is an affinity between ``u`` and ``v``."""
        return _key(u, v) in self._affinities

    def affinity_weight(self, u: Vertex, v: Vertex) -> float:
        """Weight of the affinity ``(u, v)`` (0.0 if absent)."""
        return self._affinities.get(_key(u, v), 0.0)

    def affinities(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate over ``(u, v, weight)`` triples, each affinity once.

        Endpoints are ordered by ``str`` so iteration is deterministic
        regardless of hash randomization.
        """
        for key, w in self._affinities.items():
            u, v = sorted(key, key=str)
            yield (u, v, w)

    def num_affinities(self) -> int:
        """Number of distinct affinity pairs."""
        return len(self._affinities)

    def total_affinity_weight(self) -> float:
        """Sum of all affinity weights."""
        return sum(self._affinities.values())

    def affinity_neighbors(self, v: Vertex) -> Set[Vertex]:
        """Vertices connected to ``v`` by an affinity."""
        out: Set[Vertex] = set()
        for key in self._affinities:
            if v in key:
                (other,) = key - {v}
                out.add(other)
        return out

    def coalescable_affinities(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Affinities whose endpoints do not (currently) interfere."""
        for u, v, w in self.affinities():
            if not self.has_edge(u, v):
                yield (u, v, w)

    # ------------------------------------------------------------------
    # overrides keeping affinities consistent
    # ------------------------------------------------------------------
    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` plus its edges and affinities."""
        super().remove_vertex(v)
        self._affinities = {
            key: w for key, w in self._affinities.items() if v not in key
        }

    def copy(self) -> "InterferenceGraph":
        """An independent deep copy (adjacency and affinities)."""
        g = InterferenceGraph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._affinities = dict(self._affinities)
        return g

    def subgraph(self, keep: Iterable[Vertex]) -> "InterferenceGraph":
        """The induced subgraph on ``keep``, affinities included."""
        keep_set = set(keep)
        base = super().subgraph(keep_set)
        g = InterferenceGraph()
        g._adj = base._adj
        g._affinities = {
            key: w for key, w in self._affinities.items() if key <= keep_set
        }
        return g

    def structural_graph(self) -> Graph:
        """The interference structure alone, without affinities."""
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    def merge_in_place(self, u: Vertex, v: Vertex, into: Optional[Vertex] = None) -> Vertex:
        """Coalesce ``u`` and ``v`` destructively, folding affinities.

        Affinities incident to either endpoint are re-attached to the
        merged vertex, accumulating weights; the affinity between ``u``
        and ``v`` itself disappears (it has been coalesced).  An affinity
        whose re-attachment would coincide with an interference edge is
        kept: it becomes frozen (uncoalescable) but its weight still
        matters for the objective.
        """
        # snapshot first: the base merge removes u and v through
        # remove_vertex, which would strip their affinities
        old = dict(self._affinities)
        name = super().merge_in_place(u, v, into=into)
        self._affinities = {}
        for key, w in old.items():
            ends = set(key)
            if ends == {u, v}:
                continue  # the coalesced move itself
            renamed = {name if x in (u, v) else x for x in ends}
            if len(renamed) == 1:
                continue  # both endpoints merged into the same vertex
            a, b = tuple(renamed)
            new_key = _key(a, b)
            self._affinities[new_key] = self._affinities.get(new_key, 0.0) + w
        return name

    def merged(self, u: Vertex, v: Vertex, into: Optional[Vertex] = None) -> "InterferenceGraph":
        """A copy of the graph with ``u`` and ``v`` merged."""
        g = self.copy()
        g.merge_in_place(u, v, into=into)
        return g

    def __repr__(self) -> str:
        return (
            f"InterferenceGraph(|V|={len(self)}, |E|={self.num_edges()}, "
            f"|A|={self.num_affinities()})"
        )


class Coalescing:
    """A coalescing ``f`` of an interference graph (Section 2.1).

    Represented as a partition of the vertex set via union-find.  The
    invariant enforced at every union is that no class contains two
    interfering vertices — i.e. ``f`` is a valid colouring with an
    unbounded palette.
    """

    def __init__(self, graph: InterferenceGraph) -> None:
        self.graph = graph
        self._parent: Dict[Vertex, Vertex] = {v: v for v in graph.vertices}
        self._rank: Dict[Vertex, int] = {v: 0 for v in graph.vertices}
        # members of each class, keyed by representative
        self._members: Dict[Vertex, Set[Vertex]] = {v: {v} for v in graph.vertices}

    def find(self, v: Vertex) -> Vertex:
        """Representative of the class of ``v`` (path-halving)."""
        parent = self._parent
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def same_class(self, u: Vertex, v: Vertex) -> bool:
        """True iff ``u`` and ``v`` are coalesced together."""
        return self.find(u) == self.find(v)

    def members(self, v: Vertex) -> FrozenSet[Vertex]:
        """All vertices in the class of ``v``."""
        return frozenset(self._members[self.find(v)])

    def can_union(self, u: Vertex, v: Vertex) -> bool:
        """True iff merging the classes of ``u`` and ``v`` is legal."""
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return True
        graph = self.graph
        small, large = self._members[ru], self._members[rv]
        if len(small) > len(large):
            small, large = large, small
        return not any(
            (graph.neighbors_view(x) & large) for x in small
        )

    def union(self, u: Vertex, v: Vertex) -> bool:
        """Merge the classes of ``u`` and ``v``.

        Returns True on success; raises ``ValueError`` if the union would
        put two interfering vertices in the same class.  Returns True
        silently when already in the same class.
        """
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return True
        if not self.can_union(ru, rv):
            raise ValueError(
                f"classes of {u!r} and {v!r} contain interfering vertices"
            )
        if self._rank[ru] < self._rank[rv]:
            ru, rv = rv, ru
        self._parent[rv] = ru
        if self._rank[ru] == self._rank[rv]:
            self._rank[ru] += 1
        self._members[ru] |= self._members.pop(rv)
        return True

    def classes(self) -> List[FrozenSet[Vertex]]:
        """All classes of the partition."""
        return [frozenset(s) for s in self._members.values()]

    def as_mapping(self) -> Dict[Vertex, Vertex]:
        """Map each vertex to its class representative."""
        return {v: self.find(v) for v in self.graph.vertices}

    # ------------------------------------------------------------------
    # objective
    # ------------------------------------------------------------------
    def uncoalesced_affinities(self) -> List[Tuple[Vertex, Vertex, float]]:
        """Affinities whose endpoints are in different classes."""
        return [
            (u, v, w)
            for u, v, w in self.graph.affinities()
            if not self.same_class(u, v)
        ]

    def uncoalesced_weight(self) -> float:
        """Total weight of affinities not coalesced (the paper's cost K)."""
        return sum(w for _, _, w in self.uncoalesced_affinities())

    def coalesced_weight(self) -> float:
        """Total weight of coalesced affinities (the savings)."""
        return self.graph.total_affinity_weight() - self.uncoalesced_weight()

    # ------------------------------------------------------------------
    # quotient
    # ------------------------------------------------------------------
    def coalesced_graph(self) -> InterferenceGraph:
        """The quotient graph :math:`G_f` (Section 2.1).

        Vertices are class representatives; there is an interference
        between two classes iff some pair across them interferes, and an
        affinity (with accumulated weight) iff some uncoalesced affinity
        crosses them.
        """
        g = InterferenceGraph()
        rep = self.as_mapping()
        for v in self.graph.vertices:
            g.add_vertex(rep[v])
        for u, v in self.graph.edges():
            ru, rv = rep[u], rep[v]
            if ru == rv:
                raise ValueError(
                    f"invalid coalescing: {u!r} and {v!r} interfere "
                    "but share a class"
                )
            g.add_edge(ru, rv)
        for u, v, w in self.graph.affinities():
            ru, rv = rep[u], rep[v]
            if ru != rv and not g.has_edge(ru, rv):
                g.add_affinity(ru, rv, w)
        return g


def coalescing_from_mapping(
    graph: InterferenceGraph, mapping: Mapping[Vertex, Hashable]
) -> Coalescing:
    """Build a :class:`Coalescing` from any function on the vertices.

    Vertices with equal ``mapping`` values land in the same class.
    Raises ``ValueError`` if the induced partition is not a valid
    coalescing (two interfering vertices mapped together).
    """
    by_value: Dict[Hashable, List[Vertex]] = {}
    for v in graph.vertices:
        by_value.setdefault(mapping[v], []).append(v)
    coalescing = Coalescing(graph)
    for group in by_value.values():
        for other in group[1:]:
            coalescing.union(group[0], other)
    return coalescing
