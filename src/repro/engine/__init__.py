"""Parallel, resumable experiment-campaign engine.

Turns "run strategy S on instance corpus C at k registers" into a
sharded task graph executed by a ``multiprocessing`` worker pool with
per-task wall-clock timeouts, bounded retries, crash isolation, and a
content-addressed on-disk result cache, so re-running a campaign only
executes missing or previously-failed tasks.

The pieces (one module each):

* :mod:`repro.engine.tasks` — declarative :class:`TaskSpec` (generator
  parameters + strategy + solver budget) with deterministic per-task
  seeds and stable content hashes, plus the in-process executor;
* :mod:`repro.engine.pool` — the worker pool (:func:`run_tasks`);
* :mod:`repro.engine.cache` — the JSON result store
  (:class:`ResultCache`) plus its scaling companions: the in-memory
  LRU tier (:class:`MemoryCache`), the serving composition
  (:class:`TieredCache`), and the eviction/compaction index
  (:class:`CacheIndex`);
* :mod:`repro.engine.campaign` — orchestration, tracer-report merging,
  and the summary artifact (:func:`run_campaign`).

Entry point: ``python -m repro campaign {run,status,resume} spec.json``.
See ``docs/ENGINE.md`` for the task model, the cache layout, and the
failure semantics.
"""

from .tasks import (
    ENGINE_VERSION,
    TaskSpec,
    execute_strategy,
    expand_grid,
    run_task,
    task_hash,
)
from .cache import CacheIndex, MemoryCache, ResultCache, TieredCache
from .pool import PersistentPool, run_tasks
from .campaign import (
    Campaign,
    campaign_status,
    load_campaign,
    run_campaign,
    run_campaign_remote,
)

__all__ = [
    "ENGINE_VERSION",
    "TaskSpec",
    "task_hash",
    "expand_grid",
    "execute_strategy",
    "run_task",
    "ResultCache",
    "MemoryCache",
    "TieredCache",
    "CacheIndex",
    "run_tasks",
    "PersistentPool",
    "Campaign",
    "load_campaign",
    "run_campaign",
    "run_campaign_remote",
    "campaign_status",
]
