"""Declarative task specs and the in-process task executor.

A :class:`TaskSpec` is the unit of work of the campaign engine: an
instance *generator* (plus its parameters and an **explicit** seed), a
*strategy* to run on the generated instance, and an optional in-process
solver budget.  Specs are plain data — JSON-round-trippable, hashable,
and executable in any worker process — and :func:`task_hash` gives each
one a stable content address (spec + engine code version) that keys the
result cache.

Three generator families:

* **instance generators** — ``"pressure"`` and ``"program"`` (the
  :mod:`repro.challenge.generator` corpus), ``"llvm"`` (a real function
  parsed and lowered from a ``.ll`` file by :mod:`repro.frontend` —
  ``params["path"]`` names the file, optional ``params["function"]``
  selects a function and ``params["sha256"]`` pins the file content),
  or a dotted ``"module:function"`` path returning a
  :class:`~repro.challenge.format.ChallengeInstance`;
* **custom calls** — ``strategy="call"`` with a dotted generator path:
  the function is called as ``fn(seed, k, params, tracer, budget)`` and
  its JSON-serializable return value becomes the task payload (how the
  theorem benches define their grids);
* **fault injection** — ``"sleep"`` (hangs for ``params["seconds"]``)
  and ``"crash"`` (kills the worker process), used by the tests and the
  docs to demonstrate that the pool contains hangs and crashes as
  single failed tasks.

:func:`run_task` executes one spec in the current process and returns
the *task record* (see ``docs/ENGINE.md`` for the schema).  Timeouts
that require killing a process live in :mod:`repro.engine.pool`; this
module only handles the cooperative :class:`repro.budget.Budget`.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..budget import Budget, BudgetExceeded
from ..challenge.format import ChallengeInstance
from ..challenge.generator import pressure_instance, program_instance
from ..coalescing import TESTS, conservative_coalesce, optimistic_coalesce
from ..coalescing.aggressive import aggressive_coalesce
from ..coalescing.base import CoalescingResult
from ..coalescing.biased import biased_coloring_result
from ..coalescing.chordal_strategy import chordal_incremental_coalesce
from ..coalescing.exact import optimal_conservative_coalescing
from ..obs import NULL_TRACER, Tracer

__all__ = [
    "ENGINE_VERSION",
    "TaskSpec",
    "task_hash",
    "expand_grid",
    "execute_strategy",
    "run_task",
    "INSTANCE_GENERATORS",
    "FAULT_GENERATORS",
    "STRATEGIES",
    "ALLOCATION_STRATEGIES",
]

#: Code-version tag mixed into every task hash.  Bump it whenever task
#: execution semantics change, so stale cached results are never reused.
ENGINE_VERSION = "1"

#: Built-in instance generators (see :func:`_generate_instance`).
INSTANCE_GENERATORS = ("pressure", "program", "llvm")

#: Fault-injection generators for exercising the pool's containment.
FAULT_GENERATORS = ("sleep", "crash")

#: Strategies the executor understands, beyond the conservative tests
#: of :data:`repro.coalescing.TESTS`.  ``"call"`` marks a custom task
#: whose generator is a dotted callable returning the payload directly.
EXTRA_STRATEGIES = (
    "aggressive", "optimistic", "biased", "chordal", "irc",
    "exact", "exact-kcolorable", "interval",
    "linear-scan", "second-chance", "call",
)

#: Strategies that run a register *allocator* over real code instead
#: of a coalescing strategy over a graph; they require the ``"llvm"``
#: generator (graph-only generators carry no code to allocate) and
#: produce an allocation payload (see :func:`_allocation_payload`).
ALLOCATION_STRATEGIES = ("linear-scan", "second-chance")

STRATEGIES = tuple(sorted(TESTS)) + EXTRA_STRATEGIES


@dataclass(frozen=True)
class TaskSpec:
    """One unit of campaign work; plain, hashable, JSON-round-trippable.

    ``seed`` has **no default**: every task must say where its
    randomness comes from (the engine never falls back to the old
    silent ``random.Random(0)`` — see
    :func:`repro.graphs.generators.resolve_rng`).  ``params`` holds the
    generator-specific knobs (``rounds``, ``margin``, ``num_vars``,
    ``seconds`` …) as a sorted tuple of pairs so the spec stays
    hashable; use :meth:`params_dict` to read them.
    """

    generator: str
    seed: int
    k: int = 0
    strategy: str = "brute"
    params: Tuple[Tuple[str, Any], ...] = ()
    max_steps: Optional[int] = None
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(
                f"TaskSpec seed must be an explicit int, got {self.seed!r}"
            )
        if isinstance(self.params, Mapping):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )
        else:
            object.__setattr__(
                self, "params", tuple(sorted(tuple(p) for p in self.params))
            )
        known = (
            self.generator in INSTANCE_GENERATORS
            or self.generator in FAULT_GENERATORS
            or ":" in self.generator
        )
        if not known:
            raise ValueError(
                f"unknown generator {self.generator!r} "
                f"(builtin: {INSTANCE_GENERATORS + FAULT_GENERATORS}; "
                "custom generators use a dotted 'module:function' path)"
            )
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r} (one of {STRATEGIES})"
            )

    def params_dict(self) -> Dict[str, Any]:
        """The generator parameters as a plain dict."""
        return dict(self.params)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "generator": self.generator,
            "seed": self.seed,
            "k": self.k,
            "strategy": self.strategy,
            "params": self.params_dict(),
            "max_steps": self.max_steps,
            "max_seconds": self.max_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskSpec":
        """Rebuild a spec from :meth:`as_dict` output (or a spec-file
        entry).  Unknown keys are rejected to catch typos early."""
        data = dict(data)
        params = dict(data.pop("params", {}))
        fields = {"generator", "seed", "k", "strategy",
                  "max_steps", "max_seconds"}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown TaskSpec fields: {sorted(unknown)}")
        if "seed" not in data:
            raise ValueError("TaskSpec requires an explicit seed")
        return cls(params=tuple(sorted(params.items())), **data)


def task_hash(spec: TaskSpec) -> str:
    """Stable content address of a task: spec + engine code version.

    16 hex chars of SHA-256 over the canonical JSON form.  Changing any
    spec field — or bumping :data:`ENGINE_VERSION` — changes the hash,
    so the result cache can never serve a stale or mismatched record.
    """
    canonical = json.dumps(
        {"engine": ENGINE_VERSION, **spec.as_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


_SPEC_FIELDS = ("generator", "seed", "k", "strategy",
                "max_steps", "max_seconds")


def expand_grid(
    grid: Mapping[str, Any],
    defaults: Optional[Mapping[str, Any]] = None,
) -> List[TaskSpec]:
    """Expand a parameter grid into the cartesian product of specs.

    Each grid key maps to a list of values (a scalar counts as a
    one-element list; a ``{"start": a, "count": n}`` mapping expands to
    ``range(a, a + n)`` — the usual shape of a seed axis).  Keys that
    are :class:`TaskSpec` fields set the field; any other key becomes a
    generator parameter.  ``defaults`` supplies scalar values for axes
    the grid doesn't sweep.  Axis order (dict insertion order)
    determines task order, which is part of campaign determinism.
    """
    axes: List[Tuple[str, List[Any]]] = []
    merged: Dict[str, Any] = dict(defaults or {})
    merged.update(grid)
    for key, values in merged.items():
        if isinstance(values, Mapping):
            start = int(values.get("start", 0))
            count = int(values["count"])
            values = list(range(start, start + count))
        elif not isinstance(values, (list, tuple)):
            values = [values]
        axes.append((key, list(values)))
    specs: List[TaskSpec] = []

    def rec(i: int, chosen: Dict[str, Any]) -> None:
        if i == len(axes):
            fields = {k: v for k, v in chosen.items() if k in _SPEC_FIELDS}
            params = {k: v for k, v in chosen.items() if k not in _SPEC_FIELDS}
            specs.append(TaskSpec(params=tuple(sorted(params.items())),
                                  **fields))
            return
        key, values = axes[i]
        for value in values:
            chosen[key] = value
            rec(i + 1, chosen)
        del chosen[key]

    rec(0, {})
    return specs


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def execute_strategy(
    graph: "InterferenceGraph",
    k: int,
    strategy: str,
    tracer: Tracer = NULL_TRACER,
    budget: Optional[Budget] = None,
) -> CoalescingResult:
    """Run one named coalescing strategy (the CLI shares this dispatch).

    ``budget`` only reaches the strategies that support cooperative
    budgets (the exact solvers); the heuristics are polynomial and rely
    on the pool's wall-clock timeout instead.
    """
    if strategy == "aggressive":
        return aggressive_coalesce(graph, tracer=tracer)
    if strategy == "optimistic":
        return optimistic_coalesce(graph, k, tracer=tracer)
    if strategy == "biased":
        return biased_coloring_result(graph, k, tracer=tracer)
    if strategy == "chordal":
        return chordal_incremental_coalesce(graph, k, tracer=tracer)
    if strategy == "irc":
        from ..allocator.irc import irc_coalescing_result

        return irc_coalescing_result(graph, k, tracer=tracer)
    if strategy in ("exact", "exact-kcolorable"):
        target = "greedy" if strategy == "exact" else "kcolorable"
        return optimal_conservative_coalescing(
            graph, k, target=target, budget=budget
        )
    if strategy == "interval":
        from ..intervals.coalesce import interval_coalesce

        return interval_coalesce(graph, k, tracer=tracer)
    return conservative_coalesce(graph, k, test=strategy, tracer=tracer)


def _resolve_dotted(path: str) -> Callable:
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise ValueError(f"dotted generator must be 'module:function', "
                         f"got {path!r}")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def _generate_instance(spec: TaskSpec) -> ChallengeInstance:
    params = spec.params_dict()
    if spec.generator == "pressure":
        return pressure_instance(
            spec.k,
            int(params.get("rounds", 9)),
            margin=int(params.get("margin", 0)),
            copy_fraction=float(params.get("copy_fraction", 0.8)),
            rng=random.Random(spec.seed),
            name=f"pressure-s{spec.seed}",
        )
    if spec.generator == "program":
        return program_instance(
            spec.seed,
            spec.k,
            num_vars=int(params.get("num_vars", 12)),
            name=f"program-s{spec.seed}",
        )
    if spec.generator == "llvm":
        import os

        from ..frontend.corpus import corpus_dir, instance_from_path

        path = params.get("path")
        if path is None:
            raise ValueError("the llvm generator requires params['path']")
        if not os.path.exists(path):
            # bare file names resolve against the checked-in corpus, so
            # campaign specs stay portable across working directories
            candidate = corpus_dir() / path
            if candidate.exists():
                path = candidate
        return instance_from_path(
            path,
            k=spec.k,
            function=params.get("function"),
            sha256=params.get("sha256"),
        )
    fn = _resolve_dotted(spec.generator)
    instance = fn(seed=spec.seed, k=spec.k, **params)
    if not isinstance(instance, ChallengeInstance):
        raise TypeError(
            f"{spec.generator} returned {type(instance).__name__}, "
            "expected ChallengeInstance"
        )
    return instance


def _load_task_function(spec: TaskSpec) -> Tuple[Any, int]:
    """Resolve the lowered function behind an allocation task.

    Allocation strategies need real code, so only the ``"llvm"``
    generator is accepted.  Returns ``(function, k)`` with loop-depth
    block frequencies set and ``k`` defaulted to the function's
    Maxlive when the spec says ``k <= 0`` — the same convention as
    :func:`repro.frontend.corpus.function_instance`.
    """
    if spec.generator != "llvm":
        raise ValueError(
            f"allocation strategy {spec.strategy!r} requires the "
            f"'llvm' generator (got {spec.generator!r}): graph "
            "generators carry no code to allocate"
        )
    import os

    from ..frontend.corpus import corpus_dir, function_from_path
    from ..ir.interference import set_frequencies_from_loops
    from ..ir.liveness import maxlive

    params = spec.params_dict()
    path = params.get("path")
    if path is None:
        raise ValueError("the llvm generator requires params['path']")
    if not os.path.exists(path):
        candidate = corpus_dir() / path
        if candidate.exists():
            path = candidate
    func = function_from_path(
        path, function=params.get("function"), sha256=params.get("sha256")
    )
    set_frequencies_from_loops(func)
    k = spec.k if spec.k > 0 else maxlive(func)
    return func, k


def _allocation_payload(spec: TaskSpec, result: Any) -> Dict[str, Any]:
    """The semantic payload of an allocation task (hash-covered).

    Everything here is deterministic given the spec — the verifier
    re-runs the allocator and cross-checks field by field (``ENG001``
    on any mismatch).
    """
    return {
        "function": result.function.name,
        "k": result.k,
        "variant": result.interval_variant,
        "assignment": sorted(
            [str(v), r] for v, r in result.assignment.items()
        ),
        "spilled": sorted(str(v) for v in result.spilled),
        "rounds": result.rounds,
        "intervals": result.num_intervals,
        "max_overlap": result.max_overlap,
        "coalesced_moves": result.coalesced_moves,
        "residual_moves": result.residual_moves,
    }


def _coalesce_payload(
    instance: ChallengeInstance, result: CoalescingResult
) -> Dict[str, Any]:
    return {
        "instance": instance.name,
        "vertices": len(instance.graph),
        "edges": instance.graph.num_edges(),
        "affinities": instance.graph.num_affinities(),
        "coalesced": result.num_coalesced,
        "coalesced_weight": result.coalesced_weight,
        "residual_weight": result.residual_weight,
        "coalesced_pairs": sorted(
            [str(u), str(v)] for u, v, _ in result.coalesced
        ),
    }


def _result_hash(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def run_task(
    spec: TaskSpec,
    verify: bool = False,
    deadline: Optional[float] = None,
) -> Dict[str, Any]:
    """Execute one task in the current process; return its record.

    Deterministic outcomes — success and :exc:`BudgetExceeded` — are
    turned into records here (statuses ``ok`` / ``budget_exceeded``).
    Any other exception propagates to the caller: the pool wraps it
    into an ``error`` record, and hangs/crashes are detected from
    outside the process (statuses ``timeout`` / ``crashed``).

    ``deadline`` is remaining wall-clock seconds granted by the caller
    (:meth:`repro.budget.Budget.from_deadline`); it tightens — never
    loosens — the spec's own ``max_seconds``, so a serving layer can
    bound a request's time without changing the task's identity
    (deadlines are *execution* parameters and never enter
    :func:`task_hash`).

    The record's ``result_hash`` covers only the semantic payload
    (never timings), so identical specs hash identically no matter how
    many workers ran the campaign.

    With ``verify=True`` an ``ok`` record is certified through
    :func:`repro.analysis.engine_check.verify_record` and the
    verification dict is attached under ``record["verification"]``
    (metadata only — it never enters ``result_hash``).
    """
    key = task_hash(spec)
    tracer = Tracer()
    tracer.meta.update(
        task=key, generator=spec.generator, strategy=spec.strategy,
        seed=spec.seed, k=spec.k,
    )
    t0 = time.perf_counter()
    record: Dict[str, Any] = {
        "schema": 1,
        "engine": ENGINE_VERSION,
        "key": key,
        "task": spec.as_dict(),
        "attempts": 1,
        "error": None,
    }
    try:
        budget = None
        max_seconds = spec.max_seconds
        if deadline is not None:
            if deadline <= 0:
                # spent while queued: a deterministic budget outcome,
                # not an error — the serving layer maps it to a timeout
                raise BudgetExceeded("deadline", 0, 0.0)
            max_seconds = (
                deadline if max_seconds is None
                else min(max_seconds, deadline)
            )
        if max_seconds is not None:
            budget = Budget.from_deadline(max_seconds,
                                          max_steps=spec.max_steps)
        elif spec.max_steps is not None:
            budget = Budget(max_steps=spec.max_steps)
        if spec.generator == "sleep":
            time.sleep(float(spec.params_dict().get("seconds", 60.0)))
            payload: Any = {"slept": float(spec.params_dict().get("seconds", 60.0))}
        elif spec.generator == "crash":
            import os

            os._exit(int(spec.params_dict().get("exitcode", 1)))
        elif spec.strategy == "call":
            fn = _resolve_dotted(spec.generator)
            payload = fn(spec.seed, spec.k, spec.params_dict(), tracer, budget)
        elif spec.strategy in ALLOCATION_STRATEGIES:
            from ..intervals.linear_scan import linear_scan_allocate

            func, k = _load_task_function(spec)
            variant = (
                "classic" if spec.strategy == "linear-scan"
                else "second-chance"
            )
            with tracer.span("engine-task"):
                alloc = linear_scan_allocate(
                    func, k, variant=variant, tracer=tracer
                )
            payload = _allocation_payload(spec, alloc)
        else:
            instance = _generate_instance(spec)
            with tracer.span("engine-task"):
                result = execute_strategy(
                    instance.graph, spec.k or instance.k, spec.strategy,
                    tracer=tracer, budget=budget,
                )
            payload = _coalesce_payload(instance, result)
    except BudgetExceeded as exc:
        record.update(
            status="budget_exceeded",
            payload={"reason": exc.reason, "steps": exc.steps},
            result_hash=None,
            error=str(exc),
            seconds=time.perf_counter() - t0,
        )
        if verify:
            from ..analysis.engine_check import verify_record

            record["verification"] = verify_record(spec, record, tracer=tracer)
        record["trace"] = tracer.report()
        return record
    record.update(
        status="ok",
        payload=payload,
        result_hash=_result_hash(payload),
        seconds=time.perf_counter() - t0,
    )
    if verify:
        from ..analysis.engine_check import verify_record

        record["verification"] = verify_record(spec, record, tracer=tracer)
    record["trace"] = tracer.report()
    return record
