"""Content-addressed on-disk result store for campaign tasks.

Records are the JSON dicts produced by :func:`repro.engine.tasks.run_task`
(or synthesized by the pool for timeouts/crashes), keyed by
:func:`repro.engine.tasks.task_hash` — which already folds in the
engine code version, so a version bump naturally invalidates every
entry without any explicit migration.

Layout (two-level fan-out keeps directories small)::

    <root>/
      ab/abcdef0123456789.json      # one record per task key
      <name>.summary.json           # campaign summary artifacts

Writes are atomic (a *uniquely named* temp file + ``os.replace``) and
safe under **concurrent writers**: any number of campaign workers and
:mod:`repro.serve` request handlers may share one cache directory, each
write lands whole or not at all, and the last replace wins.  An
interrupted run never leaves a half-written record; corrupt or
unreadable entries read back as misses and are simply re-executed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

__all__ = ["ResultCache"]


class ResultCache:
    """A directory of JSON task records addressed by task hash."""

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Where the record for ``key`` lives (may not exist yet)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record, or None on miss *or* corrupt entry."""
        try:
            with open(self.path(key)) as stream:
                record = json.load(stream)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            return None
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Atomically write (or overwrite) the record for ``key``.

        The temp file name is unique per writer (``tempfile.mkstemp``
        in the destination directory), so concurrent processes writing
        the same key never interleave bytes: each finishes its own temp
        file and the ``os.replace`` calls serialize, last one winning
        with a complete record either way.
        """
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as stream:
                json.dump(record, stream, indent=2, sort_keys=True)
                stream.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> bool:
        """Drop one record; True iff it existed."""
        try:
            os.unlink(self.path(key))
            return True
        except OSError:
            return False

    def keys(self) -> Iterator[str]:
        """All task keys currently stored."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def summary_path(self, name: str) -> Path:
        """Where a campaign's summary artifact is written."""
        return self.root / f"{name}.summary.json"
