"""Content-addressed on-disk result store for campaign tasks.

Records are the JSON dicts produced by :func:`repro.engine.tasks.run_task`
(or synthesized by the pool for timeouts/crashes), keyed by
:func:`repro.engine.tasks.task_hash` — which already folds in the
engine code version, so a version bump naturally invalidates every
entry without any explicit migration.

Layout (two-level fan-out keeps directories small)::

    <root>/
      ab/abcdef0123456789.json      # one record per task key
      <name>.summary.json           # campaign summary artifacts

Writes are atomic (a *uniquely named* temp file + ``os.replace``) and
safe under **concurrent writers**: any number of campaign workers and
:mod:`repro.serve` request handlers may share one cache directory, each
write lands whole or not at all, and the last replace wins.  An
interrupted run never leaves a half-written record; corrupt or
unreadable entries read back as misses and are simply re-executed.

Three companions scale the store up and out:

* :class:`MemoryCache` — a size-bounded in-process LRU tier holding
  deserialized records, with exact hit/miss/eviction counters
  (:data:`repro.obs.names.CACHE_TIER_COUNTERS`);
* :class:`TieredCache` — the serving composition: memory in front of
  the file store, promoting file hits into memory so repeats skip the
  filesystem entirely;
* :class:`CacheIndex` — a persisted recency/size index over the file
  store (``<root>/index.json``) supporting LRU **eviction and
  compaction** (``repro cache compact``) so a content-addressed
  directory can grow to millions of entries and still be bounded.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..obs import (
    CACHE_FILE_HITS,
    CACHE_FILE_MISSES,
    CACHE_MEMORY_EVICTIONS,
    CACHE_MEMORY_HITS,
    CACHE_MEMORY_MISSES,
    NULL_TRACER,
    Tracer,
)

__all__ = ["ResultCache", "MemoryCache", "TieredCache", "CacheIndex"]


class ResultCache:
    """A directory of JSON task records addressed by task hash."""

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Where the record for ``key`` lives (may not exist yet)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record, or None on miss *or* corrupt entry."""
        try:
            with open(self.path(key)) as stream:
                record = json.load(stream)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or record.get("key") != key:
            return None
        return record

    def put(self, key: str, record: Dict[str, Any]) -> bool:
        """Atomically write the record for ``key``; True iff an entry
        already existed (i.e. this put overwrote rather than inserted).

        The temp file name is unique per writer (``tempfile.mkstemp``
        in the destination directory), so concurrent processes writing
        the same key never interleave bytes: each finishes its own temp
        file and the ``os.replace`` calls serialize, last one winning
        with a complete record either way.  The overwrite report is
        best-effort under such races (it reflects whether the entry
        existed just before this writer's replace).
        """
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as stream:
                json.dump(record, stream, indent=2, sort_keys=True)
                stream.write("\n")
            existed = path.exists()
            os.replace(tmp, path)
            return existed
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> bool:
        """Drop one record; True iff it existed."""
        try:
            os.unlink(self.path(key))
            return True
        except OSError:
            return False

    def keys(self) -> Iterator[str]:
        """All task keys currently stored."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def summary_path(self, name: str) -> Path:
        """Where a campaign's summary artifact is written."""
        return self.root / f"{name}.summary.json"

    def entry_files(self) -> Iterator[Tuple[str, Path]]:
        """``(key, path)`` for every stored record, in key order."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not (shard.is_dir() and len(shard.name) == 2):
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem, entry

    def stats(self) -> Dict[str, Any]:
        """Entry count and total stored bytes (one directory scan)."""
        entries = 0
        total = 0
        for _key, path in self.entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return {"entries": entries, "bytes": total}


class MemoryCache:
    """A size-bounded in-process LRU tier over task records.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and
    evicts the least-recently-used entries beyond ``capacity``.  Every
    operation is counted on the tracer
    (:data:`repro.obs.names.CACHE_TIER_COUNTERS`), and the counts are
    exact — tests and the ``/metrics`` endpoint rely on
    hits + misses == lookups.

    Not thread-safe by itself; the service uses it from the event loop
    only, which serializes access.
    """

    def __init__(self, capacity: int = 1024,
                 tracer: Tracer = NULL_TRACER) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.tracer = tracer
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record (refreshing its recency), or None."""
        record = self._entries.get(key)
        if record is None:
            self.tracer.count(CACHE_MEMORY_MISSES)
            return None
        self._entries.move_to_end(key)
        self.tracer.count(CACHE_MEMORY_HITS)
        return record

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Insert or refresh; evict LRU entries beyond capacity."""
        self._entries[key] = record
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.tracer.count(CACHE_MEMORY_EVICTIONS)

    def delete(self, key: str) -> bool:
        """Drop one entry; True iff it was present."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every entry (counters are left alone)."""
        self._entries.clear()

    def keys(self) -> List[str]:
        """Keys from least- to most-recently used."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class TieredCache:
    """The serving cache composition: a :class:`MemoryCache` in front
    of the on-disk :class:`ResultCache`.

    ``get`` answers from memory when possible; a file-tier hit is
    *promoted* into memory so the next repeat skips the filesystem.
    ``put`` writes through to both tiers.  File-tier hit/miss counts
    land on the same tracer as the memory tier's, so tier hit rates
    are directly comparable.
    """

    def __init__(self, file: ResultCache, memory: MemoryCache,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.file = file
        self.memory = memory
        self.tracer = tracer

    def get_memory(self, key: str) -> Optional[Dict[str, Any]]:
        """Probe only the in-memory tier (no filesystem access)."""
        return self.memory.get(key)

    def get_file(self, key: str) -> Optional[Dict[str, Any]]:
        """Probe only the file tier; a hit is promoted into memory."""
        record = self.file.get(key)
        if record is None:
            self.tracer.count(CACHE_FILE_MISSES)
            return None
        self.tracer.count(CACHE_FILE_HITS)
        self.memory.put(key, record)
        return record

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Memory first, then the file store (with promotion)."""
        record = self.get_memory(key)
        if record is not None:
            return record
        return self.get_file(key)

    def put(self, key: str, record: Dict[str, Any]) -> bool:
        """Write through both tiers; True iff the file store had the
        key already (the :meth:`ResultCache.put` overwrite report)."""
        overwrote = self.file.put(key, record)
        self.memory.put(key, record)
        return overwrote

    def stats(self) -> Dict[str, Any]:
        """File-store stats plus the memory tier's occupancy."""
        stats = self.file.stats()
        stats["memory_entries"] = len(self.memory)
        stats["memory_capacity"] = self.memory.capacity
        return stats


class CacheIndex:
    """A recency/size index over a :class:`ResultCache` directory.

    The index is what makes the content-addressed store *bounded*: it
    knows every entry's size and last-use time, persists itself as
    ``<root>/index.json``, and :meth:`compact` evicts least-recently
    used records until the store fits ``max_entries`` / ``max_bytes``.

    :meth:`load` merges the persisted index with a directory scan, so
    records written by processes that never touched the index (pool
    workers, other shards) are still indexed — their file mtime stands
    in for last use until a :meth:`touch` refreshes it.  Losing or
    deleting ``index.json`` therefore loses nothing but recency hints.
    """

    INDEX_NAME = "index.json"

    def __init__(self, cache: ResultCache) -> None:
        self.cache = cache
        self.entries: Dict[str, Dict[str, float]] = {}

    @property
    def path(self) -> Path:
        """Where the index persists (inside the cache root)."""
        return self.cache.root / self.INDEX_NAME

    def load(self) -> "CacheIndex":
        """Populate from the persisted index merged with a scan."""
        saved: Dict[str, Dict[str, float]] = {}
        try:
            with open(self.path) as stream:
                data = json.load(stream)
            if isinstance(data, dict) and isinstance(
                data.get("entries"), dict
            ):
                saved = data["entries"]
        except (OSError, ValueError):
            saved = {}
        self.entries = {}
        for key, file_path in self.cache.entry_files():
            try:
                stat = file_path.stat()
            except OSError:
                continue
            known = saved.get(key)
            last_used = (
                float(known["last_used"])
                if isinstance(known, dict) and "last_used" in known
                else stat.st_mtime
            )
            self.entries[key] = {
                "bytes": float(stat.st_size),
                "last_used": last_used,
            }
        return self

    def save(self) -> None:
        """Persist atomically next to the records it indexes."""
        self.cache.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.cache.root, prefix=".index.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as stream:
                json.dump({"entries": self.entries}, stream,
                          sort_keys=True)
                stream.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def touch(self, key: str, now: Optional[float] = None) -> None:
        """Refresh ``key``'s recency (a read or write just happened)."""
        entry = self.entries.get(key)
        stamp = time.time() if now is None else now
        if entry is None:
            try:
                size = float(self.cache.path(key).stat().st_size)
            except OSError:
                return
            self.entries[key] = {"bytes": size, "last_used": stamp}
        else:
            entry["last_used"] = stamp

    def total_bytes(self) -> int:
        """Sum of indexed record sizes."""
        return int(sum(e["bytes"] for e in self.entries.values()))

    def compact(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Evict least-recently-used records until both bounds hold.

        Deletes the record files through the cache (so a racing reader
        simply misses), drops them from the index, and persists the
        compacted index.  Returns what happened.
        """
        before = len(self.entries)
        before_bytes = self.total_bytes()
        # oldest first; key is the tiebreak so compaction is stable
        order = sorted(
            self.entries.items(),
            key=lambda item: (item[1]["last_used"], item[0]),
        )
        evicted: List[str] = []
        remaining = before
        remaining_bytes = before_bytes
        for key, entry in order:
            over_entries = (
                max_entries is not None and remaining > max_entries
            )
            over_bytes = (
                max_bytes is not None and remaining_bytes > max_bytes
            )
            if not (over_entries or over_bytes):
                break
            self.cache.delete(key)
            del self.entries[key]
            remaining -= 1
            remaining_bytes -= int(entry["bytes"])
            evicted.append(key)
        self.save()
        return {
            "entries_before": before,
            "entries_after": remaining,
            "bytes_before": before_bytes,
            "bytes_after": remaining_bytes,
            "evicted": len(evicted),
            "evicted_keys": evicted,
        }
