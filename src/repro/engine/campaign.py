"""Campaign orchestration: shards, cache reuse, merged reports, summary.

A :class:`Campaign` is a named list of task specs plus execution
parameters.  :func:`run_campaign` consults the
:class:`~repro.engine.cache.ResultCache` first — reusable records
(statuses ``ok`` and ``budget_exceeded``, both deterministic outcomes)
count as cache hits; missing, ``timeout``, ``crashed`` and ``error``
records are (re-)executed through the pool — which is what makes an
interrupted or partially-failed campaign *resumable*: running it again
only executes what is missing or failed.

Every finalized record is written to the cache as it settles, each
task's tracer report is absorbed into the campaign tracer
(:meth:`repro.obs.Tracer.absorb`), and the run ends with a summary
artifact (written next to the cache) whose ``result_hash`` is a stable
digest of the per-task result hashes *in task order* — identical for 1
and N workers by construction.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..obs import Tracer
from .cache import ResultCache
from .pool import run_tasks
from .tasks import ENGINE_VERSION, TaskSpec, expand_grid, task_hash

__all__ = [
    "Campaign",
    "load_campaign",
    "run_campaign",
    "run_campaign_remote",
    "campaign_status",
    "REUSABLE_STATUSES",
]

#: Cached statuses that are deterministic outcomes and thus reusable.
REUSABLE_STATUSES = frozenset({"ok", "budget_exceeded"})


@dataclass
class Campaign:
    """A named task list plus execution parameters (all overridable at
    run time)."""

    name: str
    tasks: List[TaskSpec]
    workers: int = 1
    timeout: Optional[float] = None
    retries: int = 1
    backoff: float = 0.5
    verify: bool = False

    def keys(self) -> List[str]:
        """The content addresses of every task, in task order."""
        return [task_hash(spec) for spec in self.tasks]


def load_campaign(path: str) -> Campaign:
    """Load a campaign spec file (JSON).

    Schema (see ``docs/ENGINE.md``)::

        {"name": "sweep",
         "workers": 4, "timeout": 30.0, "retries": 1,      # optional
         "defaults": {"generator": "pressure", "k": 6},    # optional
         "grid":  {"seed": {"count": 50}, "margin": [0, 1],
                   "strategy": ["briggs", "brute"]},       # and/or
         "tasks": [{"generator": "pressure", "seed": 7, ...}]}

    ``grid`` expands to the cartesian product via
    :func:`repro.engine.tasks.expand_grid`; explicit ``tasks`` entries
    are appended after the grid.
    """
    with open(path) as stream:
        data = json.load(stream)
    if not isinstance(data, dict) or "name" not in data:
        raise ValueError(f"{path}: campaign spec needs a 'name'")
    defaults = data.get("defaults", {})
    tasks: List[TaskSpec] = []
    if "grid" in data:
        tasks.extend(expand_grid(data["grid"], defaults))
    for entry in data.get("tasks", []):
        merged = {**defaults, **entry}
        fields = {k: v for k, v in merged.items()
                  if k in ("generator", "seed", "k", "strategy",
                           "max_steps", "max_seconds", "params")}
        extra = {k: v for k, v in merged.items() if k not in fields}
        params = dict(fields.pop("params", {}))
        params.update(extra)
        tasks.append(TaskSpec.from_dict({**fields, "params": params}))
    if not tasks:
        raise ValueError(f"{path}: campaign has no tasks (grid or tasks)")
    return Campaign(
        name=str(data["name"]),
        tasks=tasks,
        workers=int(data.get("workers", 1)),
        timeout=data.get("timeout"),
        retries=int(data.get("retries", 1)),
        backoff=float(data.get("backoff", 0.5)),
        verify=bool(data.get("verify", False)),
    )


def campaign_status(campaign: Campaign, cache: ResultCache) -> Dict[str, Any]:
    """What the cache already knows about a campaign: per-status counts
    plus which tasks would run on (re-)execution."""
    by_status: Dict[str, int] = {}
    missing = 0
    would_run: List[str] = []
    for spec in campaign.tasks:
        key = task_hash(spec)
        record = cache.get(key)
        if record is None:
            missing += 1
            would_run.append(key)
            continue
        status = record.get("status", "unknown")
        by_status[status] = by_status.get(status, 0) + 1
        if status not in REUSABLE_STATUSES:
            would_run.append(key)
    return {
        "campaign": campaign.name,
        "engine_version": ENGINE_VERSION,
        "total_tasks": len(campaign.tasks),
        "by_status": dict(sorted(by_status.items())),
        "missing": missing,
        "would_run": len(would_run),
        "reusable": len(campaign.tasks) - len(would_run),
    }


def _campaign_result_hash(records: List[Dict[str, Any]]) -> str:
    """Digest of per-task semantic outcomes, in task order."""
    parts = [r.get("result_hash") or f"status:{r.get('status')}"
             for r in records]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]


def _verification_block(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-record certification outcomes for the summary."""
    certification: Dict[str, Any] = {
        "enabled": True,
        "certified": 0,
        "failed": [],
        "budget_exceeded": 0,
        "skipped": 0,
    }
    for record in records:
        outcome = record.get("verification") or {"status": "skipped"}
        status = outcome.get("status", "skipped")
        if status == "certified":
            certification["certified"] += 1
        elif status == "failed":
            certification["failed"].append(record["key"])
        elif status == "budget_exceeded":
            certification["budget_exceeded"] += 1
        else:
            certification["skipped"] += 1
    return certification


def run_campaign(
    campaign: Campaign,
    cache: ResultCache,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    write_summary: bool = True,
    verify: Optional[bool] = None,
) -> Dict[str, Any]:
    """Execute (or resume) a campaign; return the summary dict.

    Only missing and non-reusable cached tasks are executed; every
    settled record is written to the cache immediately, so interrupting
    the run loses at most the in-flight tasks.  The summary aggregates
    statuses, cache hits, the engine counters, and the merged
    per-task tracer reports.

    With ``verify`` (default: the campaign's own ``verify`` field),
    every executed record is certified through the analysis passes
    inside its worker; cache hits that predate verification are
    certified here and the upgraded record is written back.  The
    summary then carries a ``verification`` block with per-status
    counts and the keys of every failed certification.
    """
    tracer = tracer if tracer is not None else Tracer()
    workers = campaign.workers if workers is None else workers
    timeout = campaign.timeout if timeout is None else timeout
    retries = campaign.retries if retries is None else retries
    verify = campaign.verify if verify is None else verify
    t0 = time.perf_counter()

    records: List[Optional[Dict[str, Any]]] = [None] * len(campaign.tasks)
    to_run: List[int] = []
    for i, spec in enumerate(campaign.tasks):
        key = task_hash(spec)
        cached = cache.get(key)
        if cached is not None and cached.get("status") in REUSABLE_STATUSES:
            if verify and "verification" not in cached:
                from ..analysis.engine_check import verify_record

                cached["verification"] = verify_record(
                    spec, cached, tracer=tracer
                )
                cache.put(key, cached)
            records[i] = cached
            tracer.count("engine.cache_hits")
        else:
            to_run.append(i)

    def on_record(record: Dict[str, Any]) -> None:
        cache.put(record["key"], record)

    fresh = run_tasks(
        [campaign.tasks[i] for i in to_run],
        workers=workers,
        timeout=timeout,
        retries=retries,
        backoff=campaign.backoff,
        tracer=tracer,
        on_record=on_record,
        verify=verify,
    )
    for i, record in zip(to_run, fresh):
        records[i] = record
    final: List[Dict[str, Any]] = [r for r in records if r is not None]

    by_status: Dict[str, int] = {}
    aggregate = {"coalesced": 0, "coalesced_weight": 0.0,
                 "residual_weight": 0.0, "vertices": 0}
    failed: List[str] = []
    task_seconds = 0.0
    for record in final:
        status = record.get("status", "unknown")
        by_status[status] = by_status.get(status, 0) + 1
        if status not in REUSABLE_STATUSES:
            failed.append(record["key"])
        task_seconds += record.get("seconds") or 0.0
        if record.get("trace"):
            tracer.absorb(record["trace"])
        payload = record.get("payload")
        if status == "ok" and isinstance(payload, dict):
            for field_name in aggregate:
                value = payload.get(field_name)
                if isinstance(value, (int, float)):
                    aggregate[field_name] += value
    summary = {
        "campaign": campaign.name,
        "engine_version": ENGINE_VERSION,
        "total_tasks": len(campaign.tasks),
        "workers": workers,
        "cache_hits": int(tracer.counters.get("engine.cache_hits", 0)),
        "executed": len(to_run),
        "by_status": dict(sorted(by_status.items())),
        "failed_tasks": failed,
        "wall_seconds": round(time.perf_counter() - t0, 6),
        "task_seconds": round(task_seconds, 6),
        "result_hash": _campaign_result_hash(final),
        "aggregate": aggregate,
        "trace": tracer.report(),
    }
    if verify:
        summary["verification"] = _verification_block(final)
    if write_summary:
        path = cache.summary_path(campaign.name)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as stream:
            json.dump(summary, stream, indent=2, sort_keys=True)
            stream.write("\n")
        summary["summary_path"] = str(path)
    return summary


def run_campaign_remote(
    campaign: Campaign,
    url: str,
    workers: Optional[int] = None,
    verify: Optional[bool] = None,
    tracer: Optional[Tracer] = None,
    deadline: Optional[float] = None,
    wait: float = 10.0,
) -> Dict[str, Any]:
    """Execute a campaign *through a running service* instead of a
    local pool (``repro campaign run --remote URL``).

    Each of ``workers`` dispatchers holds one keep-alive connection to
    the service (a single shard or a :mod:`repro.serve.router` front
    end) and POSTs the campaign's tasks to ``/v1/task`` in task order.
    Caching, batching, admission control, and verification upgrades
    all happen **server-side**; this client only aggregates what the
    service reports.  ``campaign.retries`` bounds re-sends after
    transport failures or 429 backpressure (with ``campaign.backoff``
    sleeps); a task that still has no usable response is recorded with
    status ``unreachable`` and fails the campaign.

    The summary has the shape of :func:`run_campaign` — same
    ``result_hash`` construction, same ``verification`` block — plus
    ``remote`` (the URL) and per-disposition ``served`` counts, so a
    local and a remote run of the same grid are directly comparable.
    """
    import asyncio

    from ..serve.client import _split_url, wait_healthy
    from ..serve.http import HttpError, read_response, render_request

    tracer = tracer if tracer is not None else Tracer()
    concurrency = campaign.workers if workers is None else workers
    concurrency = max(1, concurrency)
    want_verify = campaign.verify if verify is None else verify
    retries = max(0, campaign.retries)
    host, port = _split_url(url)
    t0 = time.perf_counter()

    documents: List[Dict[str, Any]] = []
    for spec in campaign.tasks:
        document: Dict[str, Any] = {"task": spec.as_dict()}
        if want_verify:
            document["verify"] = True
        if deadline is not None:
            document["deadline"] = deadline
        documents.append(document)

    records: List[Optional[Dict[str, Any]]] = [None] * len(documents)
    served: List[Optional[Dict[str, Any]]] = [None] * len(documents)

    async def dispatch_all() -> None:
        await wait_healthy(url, timeout=wait)
        queue: "asyncio.Queue[int]" = asyncio.Queue()
        for i in range(len(documents)):
            queue.put_nowait(i)

        async def worker() -> None:
            reader = writer = None
            try:
                while True:
                    try:
                        index = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    body = json.dumps(documents[index]).encode()
                    last_error = "no attempt made"
                    for attempt in range(retries + 1):
                        if attempt:
                            await asyncio.sleep(
                                campaign.backoff * attempt
                            )
                        try:
                            if writer is None:
                                reader, writer = (
                                    await asyncio.open_connection(
                                        host, port
                                    )
                                )
                            writer.write(render_request(
                                "POST", "/v1/task", body, host=host,
                            ))
                            await writer.drain()
                            response = await read_response(reader)
                            if response is None:
                                raise HttpError(
                                    400, "connection closed mid-response"
                                )
                        except (OSError, HttpError,
                                asyncio.IncompleteReadError) as exc:
                            last_error = str(exc) or type(exc).__name__
                            tracer.count("engine.remote_transport_errors")
                            if writer is not None:
                                writer.close()
                            reader = writer = None
                            continue
                        tracer.count("engine.remote_requests")
                        if response.status in (429, 503):
                            last_error = f"HTTP {response.status}"
                            tracer.count("engine.remote_rejected")
                            continue
                        document = response.json()
                        if isinstance(document, dict) and isinstance(
                            document.get("record"), dict
                        ):
                            records[index] = document["record"]
                            served[index] = document.get("served") or {}
                        else:
                            records[index] = {
                                "key": task_hash(campaign.tasks[index]),
                                "status": "error",
                                "error": f"malformed response "
                                         f"(HTTP {response.status})",
                            }
                        break
                    else:
                        records[index] = {
                            "key": task_hash(campaign.tasks[index]),
                            "status": "unreachable",
                            "error": last_error,
                        }
            finally:
                if writer is not None:
                    writer.close()

        await asyncio.gather(*[worker() for _ in range(concurrency)])

    asyncio.run(dispatch_all())

    final: List[Dict[str, Any]] = [
        r if r is not None
        else {"key": task_hash(campaign.tasks[i]),
              "status": "unreachable", "error": "not dispatched"}
        for i, r in enumerate(records)
    ]
    by_status: Dict[str, int] = {}
    dispositions: Dict[str, int] = {}
    aggregate = {"coalesced": 0, "coalesced_weight": 0.0,
                 "residual_weight": 0.0, "vertices": 0}
    failed: List[str] = []
    task_seconds = 0.0
    cache_hits = 0
    for record, serve_info in zip(final, served):
        status = record.get("status", "unknown")
        by_status[status] = by_status.get(status, 0) + 1
        if status not in REUSABLE_STATUSES:
            failed.append(record["key"])
        task_seconds += record.get("seconds") or 0.0
        disposition = (serve_info or {}).get("cache", "unknown")
        dispositions[disposition] = dispositions.get(disposition, 0) + 1
        if disposition == "hit":
            cache_hits += 1
            tracer.count("engine.cache_hits")
        payload = record.get("payload")
        if status == "ok" and isinstance(payload, dict):
            for field_name in aggregate:
                value = payload.get(field_name)
                if isinstance(value, (int, float)):
                    aggregate[field_name] += value
    summary = {
        "campaign": campaign.name,
        "engine_version": ENGINE_VERSION,
        "remote": url,
        "total_tasks": len(campaign.tasks),
        "workers": concurrency,
        "cache_hits": cache_hits,
        "executed": len(final) - cache_hits,
        "served": dict(sorted(dispositions.items())),
        "by_status": dict(sorted(by_status.items())),
        "failed_tasks": failed,
        "wall_seconds": round(time.perf_counter() - t0, 6),
        "task_seconds": round(task_seconds, 6),
        "result_hash": _campaign_result_hash(final),
        "aggregate": aggregate,
        "trace": tracer.report(),
    }
    if want_verify:
        summary["verification"] = _verification_block(final)
    return summary
