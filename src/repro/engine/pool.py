"""Fault-tolerant worker pool: per-task timeout, retry, crash isolation.

:func:`run_tasks` executes a list of :class:`~repro.engine.tasks.TaskSpec`
on up to ``workers`` concurrent **one-task processes**.  One process per
task (rather than a long-lived pool) is what makes the failure
semantics simple and airtight:

* a task that overruns its wall-clock ``timeout`` is *terminated* and
  the rest of the campaign never notices (status ``timeout``);
* a worker that dies — segfault, ``os._exit``, OOM kill — is detected
  as a closed pipe (status ``crashed``);
* both are *retryable*: the task is re-queued with linear backoff up to
  ``retries`` extra attempts before its status sticks;
* an exception raised by the task itself is deterministic, so it is
  recorded as ``error`` immediately, with no retry;
* :exc:`~repro.budget.BudgetExceeded` is a *result*, not a failure —
  the worker reports ``budget_exceeded`` and the record is cacheable.

``workers=0`` runs everything inline in the calling process — no
subprocesses, no hang protection (only cooperative budgets) — which is
what the benchmarks and any deterministic single-process use case want.
Task records come back **in input order** regardless of completion
order, so campaign-level result hashes are identical for 1 and N
workers.

Progress counters are threaded through a :class:`repro.obs.Tracer`:
``engine.tasks_run``, ``engine.timeouts``, ``engine.crashes``,
``engine.retries``, ``engine.errors`` (see ``docs/OBSERVABILITY.md``).

:class:`PersistentPool` is the second execution surface: **long-lived**
worker processes that amortize process spawn and import cost across
many dispatches — what an always-on service needs, where
:func:`run_tasks`'s process-per-task model is the right shape for
batch campaigns.  It keeps the same containment guarantees (a hung
dispatch is killed on its deadline, a dead worker is detected as a
closed pipe and respawned) and the same record vocabulary.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import queue as queue_mod
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..budget import BudgetExceeded
from ..obs import NULL_TRACER, Tracer
from .tasks import TaskSpec, run_task, task_hash

__all__ = ["run_tasks", "PersistentPool", "RETRYABLE_STATUSES"]

#: Statuses caused by the environment rather than the task itself —
#: the only ones worth retrying.
RETRYABLE_STATUSES = frozenset({"timeout", "crashed"})

#: How long the event loop sleeps waiting for worker messages.
_POLL_SECONDS = 0.05


def _guarded_run(
    spec: TaskSpec,
    verify: bool = False,
    deadline: Optional[float] = None,
) -> Dict[str, Any]:
    """Run one task, converting task-raised exceptions into ``error``
    records (deterministic failures; never retried)."""
    try:
        return run_task(spec, verify=verify, deadline=deadline)
    except BudgetExceeded:  # run_task already handles this; belt+braces
        raise
    except Exception:
        return _failure_record(
            spec, "error", error=traceback.format_exc(limit=20)
        )


def _failure_record(
    spec: TaskSpec,
    status: str,
    error: Optional[str] = None,
    seconds: float = 0.0,
) -> Dict[str, Any]:
    from .tasks import ENGINE_VERSION

    return {
        "schema": 1,
        "engine": ENGINE_VERSION,
        "key": task_hash(spec),
        "task": spec.as_dict(),
        "status": status,
        "attempts": 1,
        "payload": None,
        "result_hash": None,
        "error": error,
        "seconds": seconds,
        "trace": None,
    }


def _worker(conn, spec_dict: Dict[str, Any], verify: bool = False) -> None:
    """Subprocess entry point: run the task, ship the record, exit."""
    record = _guarded_run(TaskSpec.from_dict(spec_dict), verify=verify)
    conn.send(record)
    conn.close()


class _Running:
    """Bookkeeping for one in-flight worker process."""

    __slots__ = ("index", "spec", "attempt", "proc", "conn", "deadline", "t0")

    def __init__(
        self,
        index: int,
        spec: TaskSpec,
        attempt: int,
        proc: Any,
        conn: Any,
        deadline: Optional[float],
        t0: float,
    ) -> None:
        self.index = index
        self.spec = spec
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.t0 = t0


def run_tasks(
    specs: Sequence[TaskSpec],
    workers: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.5,
    tracer: Tracer = NULL_TRACER,
    on_record: Optional[Callable[[Dict[str, Any]], None]] = None,
    verify: bool = False,
) -> List[Dict[str, Any]]:
    """Execute every spec; return one record per spec, in input order.

    ``timeout`` is the per-task wall-clock limit in seconds (None =
    unlimited); ``retries`` is how many *extra* attempts a retryable
    failure gets; ``backoff`` scales the linear delay before attempt n
    re-launches.  ``on_record`` is called with each finalized record as
    it settles (the campaign layer uses it to write the cache while the
    run is still in flight).  ``verify=True`` makes each worker certify
    its own ``ok`` record through the analysis passes and attach the
    outcome under ``record["verification"]``.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    results: List[Optional[Dict[str, Any]]] = [None] * len(specs)

    def finalize(index: int, record: Dict[str, Any], attempt: int) -> None:
        record["attempts"] = attempt
        results[index] = record
        tracer.count("engine.tasks_run")
        if record["status"] == "error":
            tracer.count("engine.errors")
        if on_record is not None:
            on_record(record)

    if workers == 0:
        for index, spec in enumerate(specs):
            finalize(index, _guarded_run(spec, verify=verify), attempt=1)
        return [r for r in results if r is not None]

    ctx = multiprocessing.get_context(
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    # queue entries: (index, spec, attempt, not_before)
    pending = deque((i, spec, 1, 0.0) for i, spec in enumerate(specs))
    running: List[_Running] = []

    def launch(index: int, spec: TaskSpec, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker,
            args=(child_conn, spec.as_dict(), verify),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        now = time.monotonic()
        deadline = None if timeout is None else now + timeout
        running.append(
            _Running(index, spec, attempt, proc, parent_conn, deadline, now)
        )

    def settle_failure(state: _Running, status: str) -> None:
        """A timeout or crash: retry with backoff, or finalize."""
        if status == "timeout":
            tracer.count("engine.timeouts")
        else:
            tracer.count("engine.crashes")
        elapsed = time.monotonic() - state.t0
        if state.attempt <= retries:
            tracer.count("engine.retries")
            pending.append(
                (state.index, state.spec, state.attempt + 1,
                 time.monotonic() + backoff * state.attempt)
            )
            return
        record = _failure_record(
            state.spec, status,
            error=f"{status} after {state.attempt} attempts",
            seconds=elapsed,
        )
        finalize(state.index, record, state.attempt)

    def reap(state: _Running) -> None:
        state.conn.close()
        state.proc.join(timeout=1.0)
        if state.proc.is_alive():
            state.proc.kill()
            state.proc.join()
        running.remove(state)

    while pending or running:
        now = time.monotonic()
        # launch ready work into free slots
        for _ in range(len(pending)):
            if len(running) >= workers:
                break
            index, spec, attempt, not_before = pending[0]
            if not_before > now:
                pending.rotate(-1)
                continue
            pending.popleft()
            launch(index, spec, attempt)
        if not running:
            time.sleep(_POLL_SECONDS)
            continue
        ready = multiprocessing.connection.wait(
            [state.conn for state in running], timeout=_POLL_SECONDS
        )
        for conn in ready:
            state = next(s for s in running if s.conn is conn)
            try:
                record = conn.recv()
            except (EOFError, OSError):
                # the pipe closed without a record: the worker died
                reap(state)
                settle_failure(state, "crashed")
                continue
            reap(state)
            finalize(state.index, record, state.attempt)
        now = time.monotonic()
        for state in list(running):
            if state.deadline is not None and now > state.deadline:
                state.proc.terminate()
                reap(state)
                settle_failure(state, "timeout")
            elif not state.proc.is_alive():
                # died without a message and without closing the pipe
                # cleanly enough for wait() to notice yet
                if state.conn.poll():
                    continue  # a record is waiting; next loop reads it
                reap(state)
                settle_failure(state, "crashed")
    return [r for r in results if r is not None]


# ----------------------------------------------------------------------
# persistent pool (the serving-layer execution surface)
# ----------------------------------------------------------------------
def _persistent_worker(conn: Any) -> None:
    """Long-lived subprocess loop: recv a dispatch, run it, send records.

    A dispatch is ``{"specs": [...], "deadlines": [...], "verify": b}``;
    ``None`` asks the worker to exit.  Each spec runs under its own
    remaining-deadline budget (see :func:`repro.engine.tasks.run_task`).
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        records = []
        deadlines = message.get("deadlines") or [None] * len(message["specs"])
        for spec_dict, deadline in zip(message["specs"], deadlines):
            records.append(_guarded_run(
                TaskSpec.from_dict(spec_dict),
                verify=bool(message.get("verify", False)),
                deadline=deadline,
            ))
        try:
            conn.send(records)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _PoolWorker:
    """One persistent worker process plus its command pipe."""

    __slots__ = ("proc", "conn")

    def __init__(self, ctx: Any) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_persistent_worker, args=(child_conn,), daemon=True
        )
        self.proc.start()
        child_conn.close()

    def kill(self) -> None:
        """Tear the worker down hard (used after a hang or crash)."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(timeout=1.0)


class PersistentPool:
    """A fixed-size pool of long-lived worker processes.

    Unlike :func:`run_tasks` (one process per task, ideal for batch
    campaigns), a :class:`PersistentPool` keeps ``workers`` subprocesses
    alive across dispatches, so an always-on caller — the
    :mod:`repro.serve` service — pays process spawn and import cost once,
    not per request.  :meth:`submit` is **thread-safe and blocking**:
    any number of dispatcher threads may call it concurrently; each
    call checks out one idle worker (blocking until one frees up),
    ships a whole batch of specs in a single round trip, and returns
    one record per spec in input order.

    Containment matches the batch pool: a dispatch that overruns
    ``timeout`` gets its worker killed (records: ``timeout``), a worker
    that dies mid-dispatch is detected as a closed pipe (records:
    ``crashed``), and either way a fresh worker replaces the dead one,
    so pool capacity never decays.  With ``workers=0`` dispatches run
    inline in the calling thread — no subprocesses, no kill-based
    containment (cooperative budgets only), which is what deterministic
    tests want.
    """

    def __init__(
        self,
        workers: int = 1,
        verify: bool = False,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.verify = verify
        self.tracer = tracer
        self._closed = False
        self._lock = threading.Lock()
        self._idle: "queue_mod.Queue[_PoolWorker]" = queue_mod.Queue()
        self._ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        for _ in range(workers):
            self._idle.put(_PoolWorker(self._ctx))

    # ------------------------------------------------------------------
    def submit(
        self,
        specs: Sequence[TaskSpec],
        deadlines: Optional[Sequence[Optional[float]]] = None,
        verify: Optional[bool] = None,
        timeout: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Run a batch of specs on one worker; records in input order.

        ``deadlines`` gives each spec its remaining wall-clock seconds
        (None = unlimited) — forwarded into the task's cooperative
        budget.  ``timeout`` bounds the whole dispatch from outside: on
        overrun the worker is killed and every spec in the batch gets a
        ``timeout`` record (callers batching independent requests keep
        batches homogeneous and small for exactly this blast-radius
        reason).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        verify = self.verify if verify is None else verify
        if self.workers == 0:
            return [
                _guarded_run(spec, verify=verify, deadline=deadline)
                for spec, deadline in zip(
                    specs, deadlines or [None] * len(specs)
                )
            ]
        worker = self._idle.get()
        try:
            worker.conn.send({
                "specs": [spec.as_dict() for spec in specs],
                "deadlines": list(deadlines) if deadlines else None,
                "verify": verify,
            })
            if worker.conn.poll(timeout):
                records = worker.conn.recv()
                self._idle.put(worker)
                return records
            # overrun: kill, replace, synthesize timeout records
            self.tracer.count("engine.timeouts")
            worker.kill()
            self._respawn()
            return [
                _failure_record(
                    spec, "timeout",
                    error=f"persistent-pool dispatch exceeded {timeout}s",
                    seconds=timeout or 0.0,
                )
                for spec in specs
            ]
        except (EOFError, BrokenPipeError, OSError):
            self.tracer.count("engine.crashes")
            worker.kill()
            self._respawn()
            return [
                _failure_record(
                    spec, "crashed",
                    error="worker process died mid-dispatch",
                )
                for spec in specs
            ]

    def _respawn(self) -> None:
        """Replace a killed worker so capacity never decays."""
        with self._lock:
            if not self._closed:
                self._idle.put(_PoolWorker(self._ctx))

    def close(self) -> None:
        """Shut every idle worker down (idempotent).

        Callers are expected to stop submitting first; workers still
        checked out by an in-flight :meth:`submit` are reaped when that
        dispatch returns them (their send fails once the process exits).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        while True:
            try:
                worker = self._idle.get_nowait()
            except queue_mod.Empty:
                break
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            worker.proc.join(timeout=1.0)
            worker.kill()

    def __enter__(self) -> "PersistentPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc: Any) -> None:
        """Context-manager exit: close the pool."""
        self.close()
