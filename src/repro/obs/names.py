"""Canonical counter names for kernel work accounting.

The dense-vs-dict kernel comparison (see ``docs/PERFORMANCE.md``) only
means something if every layer agrees on what "work" is called.  These
constants are the single source of truth for the two kernel-work
counters; the benchmark snapshot harness (:mod:`repro.bench.snapshot`),
the dense kernels (:mod:`repro.graphs.dense`), the dict reference
kernels, and the service ``/metrics`` endpoint all import them instead
of spelling the strings out.

Accounting convention (documented in ``docs/OBSERVABILITY.md``): both
counters record the *size of the data consumed* by an operation —
order-independent and therefore exactly reproducible across runs —
never data-dependent early exits.

* ``EDGES_SCANNED`` — per-element work: one unit for each adjacency
  element a kernel touches (a neighbour visited, a live variable added
  to an edge, a set entry inserted).
* ``WORDS_MERGED`` — per-word work: one unit for each machine word
  (:data:`repro.graphs.dense.WORD_BITS` bits) processed by a bitset
  operation (AND/OR/ANDNOT or popcount over a full mask).
* ``RANGES_BUILT`` — per-output work of the live-interval builders
  (:mod:`repro.intervals.model`): one unit for each ``(variable,
  program point)`` liveness unit emitted into an interval.  Both the
  dense and the dict builder produce identical intervals, so the
  counter is backend-independent by construction — it measures the
  *output* size while the other two measure the *input* consumed.
"""

from __future__ import annotations

#: Counter name for per-element adjacency work (dict-of-set kernels).
EDGES_SCANNED = "kernel.edges_scanned"

#: In-memory LRU tier: record answered without touching the disk.
CACHE_MEMORY_HITS = "cache.memory.hits"

#: In-memory LRU tier: key absent (the file tier is consulted next).
CACHE_MEMORY_MISSES = "cache.memory.misses"

#: In-memory LRU tier: entry dropped to stay within capacity.
CACHE_MEMORY_EVICTIONS = "cache.memory.evictions"

#: File tier: record found in the content-addressed store.
CACHE_FILE_HITS = "cache.file.hits"

#: File tier: key absent (the task has to execute).
CACHE_FILE_MISSES = "cache.file.misses"

#: Every cache-tier counter, in the order reports list them.
CACHE_TIER_COUNTERS = (
    CACHE_MEMORY_HITS,
    CACHE_MEMORY_MISSES,
    CACHE_MEMORY_EVICTIONS,
    CACHE_FILE_HITS,
    CACHE_FILE_MISSES,
)

#: Counter name for per-word bitset work (dense kernels).
WORDS_MERGED = "kernel.words_merged"

#: Counter name for live-interval units emitted by interval builders.
RANGES_BUILT = "kernel.ranges_built"

#: Every kernel-work counter, in the order reports list them.
KERNEL_WORK_COUNTERS = (EDGES_SCANNED, WORDS_MERGED, RANGES_BUILT)
