"""Pass-level observability: span timers, counters, structured events.

The paper's claims are qualitative behaviours of coalescing strategies
(how often Briggs/George refuse at high pressure, where an allocator
spends its time).  This package makes those behaviours measurable:
every strategy and allocator accepts a ``tracer`` and records merges
attempted/accepted/rejected, interference queries, and per-phase wall
time.  The default :data:`NULL_TRACER` records nothing and costs
(almost) nothing, so the instrumentation is free unless asked for.

Entry points: ``python -m repro report`` (per-instance JSON/CSV stats),
``--trace`` on the ``coalesce``/``allocate`` CLI commands, and the
benchmark harness (tracer reports attached to ``benchmark.extra_info``).
See ``docs/OBSERVABILITY.md`` for the counter-name conventions and the
report schema.
"""

from .tracer import NULL_TRACER, NullTracer, Tracer
from .names import (
    CACHE_FILE_HITS,
    CACHE_FILE_MISSES,
    CACHE_MEMORY_EVICTIONS,
    CACHE_MEMORY_HITS,
    CACHE_MEMORY_MISSES,
    CACHE_TIER_COUNTERS,
    EDGES_SCANNED,
    KERNEL_WORK_COUNTERS,
    RANGES_BUILT,
    WORDS_MERGED,
)
from .export import (
    as_report,
    csv_rows,
    merged_report,
    to_csv,
    to_json,
    to_prometheus,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "EDGES_SCANNED",
    "WORDS_MERGED",
    "RANGES_BUILT",
    "KERNEL_WORK_COUNTERS",
    "CACHE_MEMORY_HITS",
    "CACHE_MEMORY_MISSES",
    "CACHE_MEMORY_EVICTIONS",
    "CACHE_FILE_HITS",
    "CACHE_FILE_MISSES",
    "CACHE_TIER_COUNTERS",
    "as_report",
    "csv_rows",
    "merged_report",
    "to_csv",
    "to_json",
    "to_prometheus",
]
