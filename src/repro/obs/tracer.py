"""Span/counter tracer — the core of the observability layer.

A :class:`Tracer` collects three kinds of evidence while a strategy or
allocator runs:

* **counters** — monotonically accumulated named numbers
  (``tracer.count("moves.coalesced")``).  Dotted names group related
  counters; the conventions used by the library are documented in
  ``docs/OBSERVABILITY.md``.
* **spans** — nested wall-clock timers (``with tracer.span("phase")``).
  Spans aggregate by their slash-joined nesting path, so a phase
  entered many times costs one record, not one per entry.
* **events** — optional structured records for rare, interesting
  moments (``tracer.event("dissolve", cls=3)``), capped at
  ``max_events`` to bound memory (overflow is counted, not silently
  dropped).

Every instrumented function takes ``tracer=NULL_TRACER`` — a shared
no-op :class:`NullTracer` — so the default path pays only an attribute
lookup and an empty call per instrumentation point.  Hot inner loops
can hoist even that with ``if tracer.enabled: ...``.

:meth:`Tracer.report` returns a plain-``dict`` snapshot that is
JSON-serializable as-is; :mod:`repro.obs.export` renders it to JSON or
CSV and merges reports across instances.

A :class:`Tracer` is **safe to share across threads**: counter, span,
and event mutation is serialized by an internal lock (so concurrent
``count()`` calls never lose updates), and the span nesting stack is
thread-local (so spans opened on different threads do not corrupt each
other's paths).  This is what lets the serving layer
(:mod:`repro.serve`) thread one process-wide tracer through every
request handler and dispatch thread.
"""

from __future__ import annotations

import threading
import time
from types import TracebackType
from typing import Any, Dict, List, Optional, Type

__all__ = ["Tracer", "NullTracer", "NULL_TRACER"]


class _SpanHandle:
    """Context manager for one entry into a named span."""

    __slots__ = ("_tracer", "_name", "_path", "_t0")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_SpanHandle":
        stack = self._tracer._stack
        stack.append(self._name)
        self._path = "/".join(stack)
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        elapsed = time.perf_counter() - self._t0
        tracer = self._tracer
        tracer._stack.pop()
        with tracer._lock:
            stat = tracer._spans.get(self._path)
            if stat is None:
                tracer._spans[self._path] = [1, elapsed]
            else:
                stat[0] += 1
                stat[1] += elapsed
        return False


class Tracer:
    """Collects counters, nested span timings, and structured events."""

    enabled = True

    def __init__(self, max_events: int = 10_000) -> None:
        self.counters: Dict[str, float] = {}
        self.meta: Dict[str, Any] = {}
        self._spans: Dict[str, List[float]] = {}  # path -> [calls, seconds]
        self._events: List[Dict[str, Any]] = []
        self._local = threading.local()
        self._max_events = max_events
        self._dropped_events = 0
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()

    @property
    def _stack(self) -> List[str]:
        """The span nesting stack of the *calling* thread."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` (default 1) to the named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def span(self, name: str) -> "_SpanHandle":
        """A context manager timing one (possibly nested) phase.

        Re-entering the same name at the same nesting depth aggregates
        into a single record keyed by the slash-joined path.
        """
        return _SpanHandle(self, name)

    def event(self, name: str, **fields: Any) -> None:
        """Record a structured event (kept in order, capped)."""
        record: Dict[str, Any] = {
            "name": name,
            "at": round(time.perf_counter() - self._t0, 6),
        }
        record.update(fields)
        with self._lock:
            if len(self._events) >= self._max_events:
                self._dropped_events += 1
                return
            self._events.append(record)

    # ------------------------------------------------------------------
    def spans(self) -> Dict[str, Dict[str, float]]:
        """Aggregated span statistics: path -> {calls, seconds}."""
        with self._lock:
            return {
                path: {"calls": int(calls), "seconds": seconds}
                for path, (calls, seconds) in self._spans.items()
            }

    def events(self) -> List[Dict[str, Any]]:
        """The recorded events (a copy)."""
        with self._lock:
            return list(self._events)

    def report(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of everything collected.

        Schema (see docs/OBSERVABILITY.md)::

            {"counters": {name: number, ...},
             "spans": [{"name": path, "calls": n, "seconds": s}, ...],
             "events": [{"name": ..., "at": seconds, ...}, ...],
             "meta": {...},
             "dropped_events": n}
        """
        with self._lock:
            return {
                "counters": {k: self.counters[k]
                             for k in sorted(self.counters)},
                "spans": [
                    {"name": path, "calls": int(calls),
                     "seconds": round(seconds, 6)}
                    for path, (calls, seconds) in sorted(self._spans.items())
                ],
                "events": list(self._events),
                "meta": dict(self.meta),
                "dropped_events": self._dropped_events,
            }

    def absorb(self, report: Dict[str, Any]) -> None:
        """Merge a report dict's counters and spans into this tracer.

        The streaming counterpart of
        :func:`repro.obs.export.merged_report`: a long-running
        orchestrator (the campaign engine) absorbs each worker's report
        as it arrives instead of holding them all.  Events are *not*
        absorbed — they are per-run evidence with their own timelines —
        but dropped-event counts carry over.  No-op on
        :class:`NullTracer`.
        """
        if not self.enabled:
            return
        with self._lock:
            for name, value in report.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for span in report.get("spans", []):
                stat = self._spans.get(span["name"])
                if stat is None:
                    self._spans[span["name"]] = [span["calls"],
                                                 span["seconds"]]
                else:
                    stat[0] += span["calls"]
                    stat[1] += span["seconds"]
            self._dropped_events += report.get("dropped_events", 0)

    def clear(self) -> None:
        """Reset all collected data (the clock restarts too).

        Only the calling thread's span stack is reset — other threads'
        open spans keep their nesting (clearing mid-span from another
        thread would corrupt it).
        """
        with self._lock:
            self.counters.clear()
            self.meta.clear()
            self._spans.clear()
            self._events.clear()
            self._stack.clear()
            self._dropped_events = 0
            self._t0 = time.perf_counter()


class _NullSpan:
    """Shared reentrant no-op span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer that records nothing — the zero-overhead default.

    All instrumented code paths accept ``tracer=NULL_TRACER``; calling
    its methods is a no-op, and ``tracer.enabled`` is False so hot
    loops can skip instrumentation entirely.
    """

    enabled = False

    def count(self, name: str, value: float = 1) -> None:
        """No-op."""

    def span(self, name: str) -> "_NullSpan":  # type: ignore[override]
        """A shared no-op span handle."""
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        """No-op."""


#: The process-wide no-op tracer used as the default everywhere.
NULL_TRACER = NullTracer()
