"""Serialization and aggregation of tracer reports.

A *report* is the plain dict returned by
:meth:`repro.obs.Tracer.report`.  This module renders reports to JSON
and CSV and merges per-instance reports into a total — the three
operations the ``python -m repro report`` command and the benchmark
harness need.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple, Union

from .tracer import Tracer

__all__ = ["as_report", "to_json", "to_csv", "csv_rows", "merged_report"]

ReportLike = Union[Tracer, Dict[str, Any]]


def as_report(source: ReportLike) -> Dict[str, Any]:
    """Accept either a :class:`Tracer` or an already-built report dict."""
    if isinstance(source, Tracer):
        return source.report()
    return source


def to_json(source: ReportLike, indent: int = 2) -> str:
    """The report as a JSON document (sorted counters, stable order)."""
    return json.dumps(as_report(source), indent=indent)


def csv_rows(source: ReportLike) -> Iterator[Tuple[str, str, float, int]]:
    """Flatten a report into ``(kind, name, value, calls)`` rows.

    Counter rows use ``kind="counter"`` with ``calls=0``; span rows use
    ``kind="span"`` with the aggregated seconds as the value.
    """
    report = as_report(source)
    for name, value in report.get("counters", {}).items():
        yield ("counter", name, value, 0)
    for span in report.get("spans", []):
        yield ("span", span["name"], span["seconds"], span["calls"])


def to_csv(source: ReportLike) -> str:
    """The report as CSV text with a ``kind,name,value,calls`` header."""
    out = io.StringIO()
    out.write("kind,name,value,calls\n")
    for kind, name, value, calls in csv_rows(source):
        out.write(f"{kind},{name},{value:g},{calls}\n")
    return out.getvalue()


def merged_report(reports: Sequence[ReportLike]) -> Dict[str, Any]:
    """Sum counters and span statistics across reports.

    Events are not merged (they are per-run evidence, and concatenating
    them across instances would scramble their timelines); the result
    records how many reports went in instead.
    """
    counters: Dict[str, float] = {}
    spans: Dict[str, List[float]] = {}
    dropped = 0
    items = [as_report(r) for r in reports]
    for report in items:
        for name, value in report.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for span in report.get("spans", []):
            stat = spans.setdefault(span["name"], [0, 0.0])
            stat[0] += span["calls"]
            stat[1] += span["seconds"]
        dropped += report.get("dropped_events", 0)
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "spans": [
            {"name": name, "calls": int(calls), "seconds": round(seconds, 6)}
            for name, (calls, seconds) in sorted(spans.items())
        ],
        "events": [],
        "meta": {"merged_reports": len(items)},
        "dropped_events": dropped,
    }
