"""Serialization and aggregation of tracer reports.

A *report* is the plain dict returned by
:meth:`repro.obs.Tracer.report`.  This module renders reports to JSON
and CSV and merges per-instance reports into a total — the three
operations the ``python -m repro report`` command and the benchmark
harness need — plus the Prometheus text exposition format
(:func:`to_prometheus`) that backs the serving layer's ``/metrics``
endpoint.
"""

from __future__ import annotations

import io
import json
import re
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .tracer import Tracer

__all__ = [
    "as_report",
    "to_json",
    "to_csv",
    "csv_rows",
    "merged_report",
    "to_prometheus",
]

ReportLike = Union[Tracer, Dict[str, Any]]


def as_report(source: ReportLike) -> Dict[str, Any]:
    """Accept either a :class:`Tracer` or an already-built report dict."""
    if isinstance(source, Tracer):
        return source.report()
    return source


def to_json(source: ReportLike, indent: int = 2) -> str:
    """The report as a JSON document (sorted counters, stable order)."""
    return json.dumps(as_report(source), indent=indent)


def csv_rows(source: ReportLike) -> Iterator[Tuple[str, str, float, int]]:
    """Flatten a report into ``(kind, name, value, calls)`` rows.

    Counter rows use ``kind="counter"`` with ``calls=0``; span rows use
    ``kind="span"`` with the aggregated seconds as the value.
    """
    report = as_report(source)
    for name, value in report.get("counters", {}).items():
        yield ("counter", name, value, 0)
    for span in report.get("spans", []):
        yield ("span", span["name"], span["seconds"], span["calls"])


def to_csv(source: ReportLike) -> str:
    """The report as CSV text with a ``kind,name,value,calls`` header."""
    out = io.StringIO()
    out.write("kind,name,value,calls\n")
    for kind, name, value, calls in csv_rows(source):
        out.write(f"{kind},{name},{value:g},{calls}\n")
    return out.getvalue()


def merged_report(reports: Sequence[ReportLike]) -> Dict[str, Any]:
    """Sum counters and span statistics across reports.

    Events are not merged (they are per-run evidence, and concatenating
    them across instances would scramble their timelines); the result
    records how many reports went in instead.
    """
    counters: Dict[str, float] = {}
    spans: Dict[str, List[float]] = {}
    dropped = 0
    items = [as_report(r) for r in reports]
    for report in items:
        for name, value in report.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for span in report.get("spans", []):
            stat = spans.setdefault(span["name"], [0, 0.0])
            stat[0] += span["calls"]
            stat[1] += span["seconds"]
        dropped += report.get("dropped_events", 0)
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "spans": [
            {"name": name, "calls": int(calls), "seconds": round(seconds, 6)}
            for name, (calls, seconds) in sorted(spans.items())
        ],
        "events": [],
        "meta": {"merged_reports": len(items)},
        "dropped_events": dropped,
    }


_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(prefix: str, name: str) -> str:
    """Sanitize a dotted counter name into a Prometheus metric name."""
    flat = _METRIC_NAME_RE.sub("_", f"{prefix}_{name}")
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _format_value(value: float) -> str:
    """Render a metric value the way Prometheus expects (no exponent
    surprises for integral counters)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(
    source: ReportLike,
    prefix: str = "repro",
    gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """Render a report in the Prometheus text exposition format (0.0.4).

    Counters become ``<prefix>_<name>_total`` counter families (dots
    and other non-identifier characters flattened to underscores), and
    every span path becomes one sample of the two shared families
    ``<prefix>_span_seconds_total`` / ``<prefix>_span_calls_total``,
    labelled ``{span="path"}``.  ``gauges`` adds point-in-time values
    (queue depths, in-flight work) under ``<prefix>_<name>``; a gauge
    name may carry its own ``{label="..."}`` suffix, which is kept
    verbatim while the ``# TYPE`` header uses the bare family name.
    """
    report = as_report(source)
    out = io.StringIO()
    for name in sorted(report.get("counters", {})):
        metric = _metric_name(prefix, name) + "_total"
        out.write(f"# TYPE {metric} counter\n")
        out.write(f"{metric} {_format_value(report['counters'][name])}\n")
    spans = sorted(report.get("spans", []), key=lambda s: s["name"])
    if spans:
        seconds_metric = f"{prefix}_span_seconds_total"
        calls_metric = f"{prefix}_span_calls_total"
        out.write(f"# TYPE {seconds_metric} counter\n")
        for span in spans:
            label = span["name"].replace("\\", "\\\\").replace('"', '\\"')
            out.write(
                f'{seconds_metric}{{span="{label}"}} '
                f"{_format_value(span['seconds'])}\n"
            )
        out.write(f"# TYPE {calls_metric} counter\n")
        for span in spans:
            label = span["name"].replace("\\", "\\\\").replace('"', '\\"')
            out.write(
                f'{calls_metric}{{span="{label}"}} '
                f"{_format_value(span['calls'])}\n"
            )
    seen_families = set()
    for name in sorted(gauges or {}):
        bare = name.split("{", 1)[0]
        family = _metric_name(prefix, bare)
        sample = family + name[len(bare):]
        if family not in seen_families:
            out.write(f"# TYPE {family} gauge\n")
            seen_families.add(family)
        out.write(f"{sample} {_format_value(gauges[name])}\n")
    return out.getvalue()
