"""Register allocators built on the coalescing library.

Two designs from the paper's Section 1:

* :func:`chaitin_allocate` — the integrated Chaitin–Briggs loop
  (simplify / conservative-coalesce / freeze / spill / select, iterated
  after actual spills);
* :func:`ssa_allocate` — the decoupled two-phase allocator: spill to
  Maxlive ≤ k on strict SSA, then colour the (chordal) graph while
  coalescing with any strategy.
"""

from .spill import (
    is_memory_slot,
    memory_slots,
    spill_costs,
    spill_everywhere,
    strip_memory_slots,
)
from .chaitin import AllocationResult, chaitin_allocate
from .irc import IRCResult, irc_allocate, irc_coalescing_result
from .local import (
    Interval,
    belady_local_allocate,
    block_intervals,
    color_intervals,
    max_overlap,
)
from .ssa_allocator import (
    SSAAllocationStats,
    spill_to_pressure,
    ssa_allocate,
)

__all__ = [
    "is_memory_slot",
    "memory_slots",
    "spill_costs",
    "spill_everywhere",
    "strip_memory_slots",
    "AllocationResult",
    "chaitin_allocate",
    "SSAAllocationStats",
    "spill_to_pressure",
    "ssa_allocate",
    "Interval",
    "belady_local_allocate",
    "block_intervals",
    "color_intervals",
    "max_overlap",
    "IRCResult",
    "irc_allocate",
    "irc_coalescing_result",
]
