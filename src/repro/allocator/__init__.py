"""Register allocators built on the coalescing library.

Two designs from the paper's Section 1:

* :func:`chaitin_allocate` — the integrated Chaitin–Briggs loop
  (simplify / conservative-coalesce / freeze / spill / select, iterated
  after actual spills);
* :func:`ssa_allocate` — the decoupled two-phase allocator: spill to
  Maxlive ≤ k on strict SSA, then colour the (chordal) graph while
  coalescing with any strategy.

A third family lives in :mod:`repro.intervals`:
:func:`repro.intervals.linear_scan_allocate` colours live *intervals*
instead of the graph (classic Poletto and hole-aware second-chance
variants), reusing this package's :func:`spill_everywhere` cost model
and rewriting.  It is deliberately not re-exported here — the interval
subsystem builds on :class:`AllocationResult`, so an eager re-export
would cycle — reach it via ``repro.intervals`` or ``repro allocate
--allocator linear-scan|second-chance``.  (The unrelated ``Interval``
/ ``block_intervals`` / ``max_overlap`` names below are the older
single-block local-allocation machinery of :mod:`repro.allocator
.local`; :mod:`repro.intervals` is the whole-function model.)
"""

from .spill import (
    is_memory_slot,
    memory_slots,
    spill_costs,
    spill_everywhere,
    strip_memory_slots,
)
from .chaitin import AllocationResult, chaitin_allocate
from .irc import IRCResult, irc_allocate, irc_coalescing_result
from .local import (
    Interval,
    belady_local_allocate,
    block_intervals,
    color_intervals,
    max_overlap,
)
from .ssa_allocator import (
    SSAAllocationStats,
    spill_to_pressure,
    ssa_allocate,
)

__all__ = [
    "is_memory_slot",
    "memory_slots",
    "spill_costs",
    "spill_everywhere",
    "strip_memory_slots",
    "AllocationResult",
    "chaitin_allocate",
    "SSAAllocationStats",
    "spill_to_pressure",
    "ssa_allocate",
    "Interval",
    "belady_local_allocate",
    "block_intervals",
    "color_intervals",
    "max_overlap",
    "IRCResult",
    "irc_allocate",
    "irc_coalescing_result",
]
