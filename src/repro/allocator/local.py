"""Local (basic-block) register allocation.

The paper's decoupled view of register allocation cites Liberatore,
Farach-Colton and Kremer's evaluation of *local* register allocation
[25]: on straight-line code the interference graph is an interval graph
and the spilling problem has clean offline solutions.  This module
provides the classical algorithms on our IR, used both as a substrate
for interval-graph experiments and as a baseline in the allocator
benches:

* :func:`belady_local_allocate` — furthest-next-use eviction (Belady's
  MIN adapted to registers), optimal for the number of *reloads* under
  unit costs;
* :func:`linear_scan_intervals` — the interval view of a block: live
  intervals, their maximal overlap (= Maxlive = ω of the interval
  graph), and an optimal colouring by the greedy sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.cfg import BasicBlock, Function
from ..ir.instructions import Instr, Var
from ..obs import NULL_TRACER, Tracer


@dataclass
class LocalAllocation:
    """Result of local allocation on one block."""

    k: int
    #: per-instruction register assignment for used/defined variables
    assignment: List[Dict[Var, int]]
    loads: int = 0
    stores: int = 0

    @property
    def spill_operations(self) -> int:
        """Total memory operations introduced."""
        return self.loads + self.stores


def _next_use_table(instrs: Sequence[Instr]) -> List[Dict[Var, int]]:
    """next_use[i][v] = index of the first use of v at or after i
    (absent when never used again)."""
    table: List[Dict[Var, int]] = [dict() for _ in range(len(instrs) + 1)]
    upcoming: Dict[Var, int] = {}
    for i in range(len(instrs) - 1, -1, -1):
        table[i + 1] = dict(upcoming)
        # a definition at i kills older uses; a use at i is a use at i
        for v in instrs[i].defs:
            upcoming.pop(v, None)
        for v in instrs[i].uses:
            upcoming[v] = i
        table[i] = dict(upcoming)
    return table


def belady_local_allocate(
    block: BasicBlock,
    k: int,
    live_out: Optional[Set[Var]] = None,
    tracer: Tracer = NULL_TRACER,
) -> LocalAllocation:
    """Belady-style local allocation of one basic block.

    Simulates a register file of size ``k``; on pressure, evicts the
    resident variable whose next use is furthest (ties: not live-out
    first).  Counts the loads (reload of an evicted variable at its
    next use) and stores (first eviction of a dirty variable).

    Raises ``ValueError`` when an instruction needs more than ``k``
    simultaneous operands.
    """
    if k <= 0:
        raise ValueError("need at least one register")
    live_out = set(live_out or ())
    instrs = block.instrs
    next_use = _next_use_table(instrs)
    registers: Dict[Var, int] = {}
    free: List[int] = list(range(k - 1, -1, -1))
    dirty: Set[Var] = set()
    stored: Set[Var] = set()
    result = LocalAllocation(k=k, assignment=[])

    def evict(protect: Set[Var], at: int) -> None:
        candidates = [v for v in registers if v not in protect]
        if not candidates:
            raise ValueError(
                f"instruction {at} needs more than {k} registers at once"
            )
        def key(v: Var):
            nu = next_use[at + 1].get(v)
            # prefer evicting: never used again and not live-out, then
            # furthest next use
            never = nu is None and v not in live_out
            return (not never, -(nu if nu is not None else 10 ** 9))
        victim = min(candidates, key=key)
        tracer.count("local.evictions")
        if (victim in dirty or victim in live_out) and victim not in stored:
            nu = next_use[at + 1].get(victim)
            if nu is not None or victim in live_out:
                result.stores += 1
                stored.add(victim)
                tracer.count("local.stores")
        free.append(registers.pop(victim))

    def ensure(v: Var, protect: Set[Var], at: int, is_def: bool) -> None:
        if v in registers:
            return
        if not free:
            evict(protect, at)
        registers[v] = free.pop()
        if not is_def:
            result.loads += 1  # reload (or first load of a livein)
            tracer.count("local.loads")
        if is_def:
            dirty.add(v)
            stored.discard(v)

    for i, instr in enumerate(instrs):
        snapshot: Dict[Var, int] = {}
        protect: Set[Var] = set(instr.uses)
        for v in instr.uses:
            ensure(v, protect - {v}, i, is_def=False)
        for v in instr.uses:
            snapshot[v] = registers[v]
        # a dying operand's register may be overwritten by a result:
        # release uses with no later use (and not live-out) before
        # allocating the definitions
        for v in instr.uses:
            if (
                v in registers
                and v not in instr.defs
                and next_use[i + 1].get(v) is None
                and v not in live_out
            ):
                free.append(registers.pop(v))
                dirty.discard(v)
        # defs may evict even surviving operands (already read at this
        # point); only sibling defs are untouchable
        def_protect = set(instr.defs)
        for v in instr.defs:
            ensure(v, def_protect - {v}, i, is_def=True)
            dirty.add(v)
            snapshot[v] = registers[v]
        result.assignment.append(snapshot)
    return result


@dataclass
class Interval:
    """A live interval within a block: [start, end] instruction indices."""

    var: Var
    start: int
    end: int


def block_intervals(
    block: BasicBlock, live_out: Optional[Set[Var]] = None
) -> List[Interval]:
    """Live intervals of a straight-line block.

    A variable's interval runs from its first definition (or 0 if
    live-in) to its last use (or the block end if live-out).
    """
    live_out = set(live_out or ())
    n = len(block.instrs)
    first_def: Dict[Var, int] = {}
    last_use: Dict[Var, int] = {}
    seen: Set[Var] = set()
    for i, instr in enumerate(block.instrs):
        for v in instr.uses:
            last_use[v] = i
            if v not in seen:
                seen.add(v)
                first_def.setdefault(v, 0)  # live-in
        for v in instr.defs:
            seen.add(v)
            first_def.setdefault(v, i)
    intervals = []
    for v in seen:
        end = n if v in live_out else last_use.get(v, first_def[v])
        intervals.append(Interval(var=v, start=first_def[v], end=end))
    return sorted(intervals, key=lambda iv: (iv.start, iv.end, str(iv.var)))


def max_overlap(intervals: Sequence[Interval]) -> int:
    """Maximum number of simultaneously-live intervals (= ω of the
    interval graph = local Maxlive)."""
    events: List[Tuple[int, int]] = []
    for iv in intervals:
        events.append((iv.start, 1))
        events.append((iv.end + 1, -1))
    events.sort()
    best = cur = 0
    for _, delta in events:
        cur += delta
        best = max(best, cur)
    return best


def color_intervals(
    intervals: Sequence[Interval], k: Optional[int] = None
) -> Optional[Dict[Var, int]]:
    """Greedy sweep colouring of intervals (optimal: uses max-overlap
    colours).  Returns None if more than ``k`` colours are needed."""
    active: List[Tuple[int, int, Var]] = []  # (end, colour, var)
    free: List[int] = []
    next_color = 0
    coloring: Dict[Var, int] = {}
    for iv in intervals:
        still_active = []
        for end, color, var in active:
            if end < iv.start:
                free.append(color)
            else:
                still_active.append((end, color, var))
        active = still_active
        if free:
            color = min(free)
            free.remove(color)
        else:
            color = next_color
            next_color += 1
            if k is not None and color >= k:
                return None
        coloring[iv.var] = color
        active.append((iv.end, color, iv.var))
    return coloring
