"""Iterated Register Coalescing (George & Appel, TOPLAS 1996).

The classical framework the paper analyzes in Sections 1 and 4: a
worklist-driven interleaving of simplify / coalesce / freeze /
potential-spill over the interference graph, with Briggs' test between
temporaries and George's test against *precolored* machine registers —
the asymmetric usage the paper highlights ("George's rule is used in
[19] only to merge a vertex u with a precolored vertex v ... because
such a vertex never leads to a spill").

This is a faithful graph-level implementation of the published
pseudocode (worklists, move sets, alias chains), operating on an
:class:`~repro.graphs.InterferenceGraph`; spill code rewriting is the
caller's business (see :func:`repro.allocator.chaitin_allocate` for a
full loop).  A ``george_any`` switch applies George's test between any
two nodes — the paper's suggested strengthening when spilling was done
beforehand — so the difference is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..graphs.graph import Vertex
from ..graphs.interference import InterferenceGraph
from ..obs import NULL_TRACER, Tracer


@dataclass
class IRCResult:
    """Outcome of one IRC colouring round."""

    colors: Dict[Vertex, int]
    spilled: List[Vertex]
    coalesced_moves: int
    frozen_moves: int
    #: representative each coalesced node was merged into
    alias: Dict[Vertex, Vertex] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        """True iff the run coloured everything without spilling."""
        return not self.spilled


class _IRC:
    def __init__(
        self,
        graph: InterferenceGraph,
        k: int,
        precolored: Dict[Vertex, int],
        costs: Dict[Vertex, float],
        george_any: bool,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.k = k
        self.george_any = george_any
        self.tracer = tracer
        self.costs = costs
        self.precolored: Set[Vertex] = set(precolored)
        self.color: Dict[Vertex, int] = dict(precolored)

        self.adj: Dict[Vertex, Set[Vertex]] = {
            v: set() for v in graph.vertices
        }
        self.degree: Dict[Vertex, int] = {v: 0 for v in graph.vertices}
        for u, v in graph.edges():
            self._add_edge(u, v)

        # move sets, keyed by the unordered pair
        self.worklist_moves: Set[FrozenSet[Vertex]] = set()
        self.active_moves: Set[FrozenSet[Vertex]] = set()
        self.coalesced_moves: Set[FrozenSet[Vertex]] = set()
        self.constrained_moves: Set[FrozenSet[Vertex]] = set()
        self.frozen_moves: Set[FrozenSet[Vertex]] = set()
        self.move_list: Dict[Vertex, Set[FrozenSet[Vertex]]] = {
            v: set() for v in graph.vertices
        }
        for u, v, _ in graph.affinities():
            if u == v or graph.has_edge(u, v):
                continue
            move = frozenset((u, v))
            self.worklist_moves.add(move)
            self.move_list[u].add(move)
            self.move_list[v].add(move)

        self.alias: Dict[Vertex, Vertex] = {}
        self.coalesced_nodes: Set[Vertex] = set()
        self.select_stack: List[Vertex] = []
        self.on_stack: Set[Vertex] = set()
        self.spilled_nodes: List[Vertex] = []

        self.simplify_worklist: Set[Vertex] = set()
        self.freeze_worklist: Set[Vertex] = set()
        self.spill_worklist: Set[Vertex] = set()
        for v in graph.vertices:
            if v in self.precolored:
                continue
            if self.degree[v] >= k:
                self.spill_worklist.add(v)
            elif self._move_related(v):
                self.freeze_worklist.add(v)
            else:
                self.simplify_worklist.add(v)

    # ------------------------------------------------------------------
    def _add_edge(self, u: Vertex, v: Vertex) -> None:
        if u == v or v in self.adj[u]:
            return
        self.adj[u].add(v)
        self.adj[v].add(u)
        # precolored nodes have conceptually infinite degree
        if u not in self.precolored:
            self.degree[u] += 1
        if v not in self.precolored:
            self.degree[v] += 1

    def _node_moves(self, v: Vertex) -> Set[FrozenSet[Vertex]]:
        return self.move_list[v] & (self.active_moves | self.worklist_moves)

    def _move_related(self, v: Vertex) -> bool:
        return bool(self._node_moves(v))

    def _adjacent(self, v: Vertex) -> List[Vertex]:
        return [
            u
            for u in self.adj[v]
            if u not in self.on_stack and u not in self.coalesced_nodes
        ]

    def _enable_moves(self, nodes) -> None:
        for n in nodes:
            for move in list(self._node_moves(n) & self.active_moves):
                self.active_moves.discard(move)
                self.worklist_moves.add(move)

    def _decrement_degree(self, v: Vertex) -> None:
        if v in self.precolored:
            return
        d = self.degree[v]
        self.degree[v] = d - 1
        if d == self.k:
            self._enable_moves([v] + self._adjacent(v))
            self.spill_worklist.discard(v)
            if self._move_related(v):
                self.freeze_worklist.add(v)
            else:
                self.simplify_worklist.add(v)

    # ------------------------------------------------------------------
    def simplify(self) -> None:
        """Remove one low-degree, move-unrelated node onto the stack."""
        v = min(self.simplify_worklist, key=str)
        self.simplify_worklist.discard(v)
        self.select_stack.append(v)
        self.on_stack.add(v)
        self.tracer.count("irc.simplified")
        for u in self._adjacent(v):
            self._decrement_degree(u)

    # ------------------------------------------------------------------
    def _get_alias(self, v: Vertex) -> Vertex:
        while v in self.coalesced_nodes:
            v = self.alias[v]
        return v

    def _add_worklist(self, v: Vertex) -> None:
        if (
            v not in self.precolored
            and not self._move_related(v)
            and self.degree[v] < self.k
        ):
            self.freeze_worklist.discard(v)
            self.simplify_worklist.add(v)

    def _ok(self, t: Vertex, r: Vertex) -> bool:
        """George's per-neighbour condition for merging into r."""
        return (
            self.degree[t] < self.k
            or t in self.precolored
            or t in self.adj[r]
        )

    def _conservative(self, nodes) -> bool:
        """Briggs' test over the combined neighbourhood."""
        significant = 0
        for n in nodes:
            if n in self.precolored or self.degree[n] >= self.k:
                significant += 1
        return significant < self.k

    def coalesce(self) -> None:
        """Try one move with the George, then Briggs, conservative test."""
        move = min(self.worklist_moves, key=lambda m: sorted(map(str, m)))
        self.worklist_moves.discard(move)
        x, y = move
        x, y = self._get_alias(x), self._get_alias(y)
        if y in self.precolored:
            x, y = y, x
        u, v = x, y  # u may be precolored; v never is (unless both)
        if u == v:
            self.coalesced_moves.add(move)
            self._add_worklist(u)
            self.tracer.count("moves.transitive")
            return
        self.tracer.count("queries.interference")
        if v in self.precolored or v in self.adj[u]:
            self.constrained_moves.add(move)
            self._add_worklist(u)
            self._add_worklist(v)
            self.tracer.count("moves.constrained")
            return
        self.tracer.count("moves.attempted")
        george_applicable = u in self.precolored or self.george_any
        george_ok = george_applicable and all(
            self._ok(t, u) for t in self._adjacent(v)
        )
        briggs_ok = u not in self.precolored and self._conservative(
            set(self._adjacent(u)) | set(self._adjacent(v))
        )
        if george_ok or briggs_ok:
            self.coalesced_moves.add(move)
            self._combine(u, v)
            self._add_worklist(u)
            self.tracer.count("moves.coalesced")
            self.tracer.count(
                "irc.coalesced_by_george" if george_ok else "irc.coalesced_by_briggs"
            )
        else:
            # deferred, not refused for good: the move may re-enable
            self.active_moves.add(move)
            self.tracer.count("moves.rejected")

    def _combine(self, u: Vertex, v: Vertex) -> None:
        self.freeze_worklist.discard(v)
        self.spill_worklist.discard(v)
        self.coalesced_nodes.add(v)
        self.alias[v] = u
        self.move_list[u] |= self.move_list[v]
        self._enable_moves([v])
        for t in self._adjacent(v):
            self._add_edge(t, u)
            self._decrement_degree(t)
        if (
            u not in self.precolored
            and self.degree[u] >= self.k
            and u in self.freeze_worklist
        ):
            self.freeze_worklist.discard(u)
            self.spill_worklist.add(u)

    # ------------------------------------------------------------------
    def freeze(self) -> None:
        """Give up the moves of one low-degree node so it can simplify."""
        v = min(self.freeze_worklist, key=str)
        self.freeze_worklist.discard(v)
        self.simplify_worklist.add(v)
        self.tracer.count("irc.freezes")
        self._freeze_moves(v)

    def _freeze_moves(self, v: Vertex) -> None:
        for move in list(self._node_moves(v)):
            self.active_moves.discard(move)
            self.worklist_moves.discard(move)
            self.frozen_moves.add(move)
            (a, b) = move
            other = self._get_alias(b) if self._get_alias(a) == self._get_alias(v) else self._get_alias(a)
            if (
                other not in self.precolored
                and not self._move_related(other)
                and self.degree[other] < self.k
            ):
                self.spill_worklist.discard(other)
                self.freeze_worklist.discard(other)
                self.simplify_worklist.add(other)

    # ------------------------------------------------------------------
    def select_spill(self) -> None:
        """Optimistically push the cheapest spill candidate."""
        v = min(
            self.spill_worklist,
            key=lambda x: (
                self.costs.get(x, 1.0) / max(1, self.degree[x]),
                str(x),
            ),
        )
        self.spill_worklist.discard(v)
        self.simplify_worklist.add(v)
        self.tracer.count("irc.spill_candidates")
        self._freeze_moves(v)

    # ------------------------------------------------------------------
    def assign_colors(self) -> None:
        """Pop the stack, colouring each node (or marking it spilled)."""
        while self.select_stack:
            v = self.select_stack.pop()
            self.on_stack.discard(v)
            forbidden = set()
            for t in self.adj[v]:
                t = self._get_alias(t)
                if t in self.color:
                    forbidden.add(self.color[t])
            available = [c for c in range(self.k) if c not in forbidden]
            if not available:
                self.spilled_nodes.append(v)
            else:
                self.color[v] = available[0]
        for v in self.coalesced_nodes:
            rep = self._get_alias(v)
            if rep in self.color:
                self.color[v] = self.color[rep]
            else:
                self.spilled_nodes.append(v)

    # ------------------------------------------------------------------
    def run(self) -> IRCResult:
        """Drive the worklists to exhaustion and return the result."""
        with self.tracer.span("irc/worklists"):
            while (
                self.simplify_worklist
                or self.worklist_moves
                or self.freeze_worklist
                or self.spill_worklist
            ):
                if self.simplify_worklist:
                    self.simplify()
                elif self.worklist_moves:
                    self.coalesce()
                elif self.freeze_worklist:
                    self.freeze()
                else:
                    self.select_spill()
        with self.tracer.span("irc/select"):
            self.assign_colors()
        self.tracer.count("irc.actual_spills", len(self.spilled_nodes))
        return IRCResult(
            colors=dict(self.color),
            spilled=list(self.spilled_nodes),
            coalesced_moves=len(self.coalesced_moves),
            frozen_moves=len(self.frozen_moves),
            alias={v: self._get_alias(v) for v in self.coalesced_nodes},
        )


def irc_allocate(
    graph: InterferenceGraph,
    k: int,
    precolored: Optional[Dict[Vertex, int]] = None,
    costs: Optional[Dict[Vertex, float]] = None,
    george_any: bool = False,
    tracer: Tracer = NULL_TRACER,
) -> IRCResult:
    """One round of iterated register coalescing on an interference
    graph.

    ``precolored`` pins machine registers (infinite degree, never
    simplified or spilled); ``george_any`` extends George's test from
    precolored-only (the published algorithm) to any pair (the paper's
    §4 suggestion for post-spilling use).  Returns colours, potential
    spills that became actual (uncolourable) and move statistics.
    """
    if k <= 0:
        raise ValueError("need at least one register")
    precolored = dict(precolored or {})
    for v, c in precolored.items():
        if not 0 <= c < k:
            raise ValueError(f"precoloured register {c} out of range")
        if v not in graph:
            raise ValueError(f"precoloured vertex {v!r} not in graph")
    return _IRC(
        graph, k, precolored, dict(costs or {}), george_any, tracer=tracer
    ).run()


def irc_coalescing_result(
    graph: InterferenceGraph,
    k: int,
    precolored: Optional[Dict[Vertex, int]] = None,
    george_any: bool = False,
    tracer: Tracer = NULL_TRACER,
) -> CoalescingResult:
    """Run IRC and express its coalescing decisions as a
    :class:`~repro.coalescing.base.CoalescingResult` (so IRC slots into
    the strategy-comparison and CLI machinery)."""
    from ..coalescing.base import CoalescingResult
    from ..graphs.interference import Coalescing

    result = irc_allocate(
        graph, k, precolored=precolored, george_any=george_any, tracer=tracer
    )
    coalescing = Coalescing(graph)
    for v, rep in result.alias.items():
        coalescing.union(v, rep)
    coalesced = [
        (u, v, w) for u, v, w in graph.affinities()
        if coalescing.same_class(u, v)
    ]
    given_up = [
        (u, v, w) for u, v, w in graph.affinities()
        if not coalescing.same_class(u, v)
    ]
    return CoalescingResult(
        graph=graph,
        coalescing=coalescing,
        strategy="irc-george-any" if george_any else "irc",
        coalesced=coalesced,
        given_up=given_up,
    )
