"""Spilling support: cost model and spill-everywhere code rewriting.

The paper treats spilling as the *other* half of register allocation
(Section 1): Chaitin-style allocators spill inside the colouring loop,
SSA-based allocators spill in a first phase until Maxlive ≤ k.  Both
allocators here use the same primitive: spill a variable *everywhere*,
i.e. give every definition a store and every use its own freshly-named
load, so the variable's live range shatters into tiny intervals.

Memory slots are modelled as pseudo-variables named ``slot(...)``
defined by ``store`` and read by ``load``; they do not occupy registers
and must be filtered out of pressure/interference computations
(:func:`is_memory_slot`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir.cfg import Function
from ..ir.dominance import loop_depths
from ..ir.instructions import Instr, Phi, Var
from ..ir.ssa import _copy_function
from ..obs import NULL_TRACER, Tracer

_TERMINATORS = frozenset({"br", "cbr", "jmp", "ret", "switch"})


def is_memory_slot(v: Var) -> bool:
    """True for the pseudo-variables standing for stack slots."""
    return isinstance(v, str) and v.startswith("slot(")


def spill_costs(func: Function) -> Dict[Var, float]:
    """Chaitin's static spill cost: (defs + uses) weighted by the block
    frequency (10^loop-depth when frequencies were not set)."""
    if not func.frequency:
        freq = {b: 10.0 ** d for b, d in loop_depths(func).items()}
    else:
        freq = {b: func.block_frequency(b) for b in func.blocks}
    costs: Dict[Var, float] = {}
    # insertion-order walk so float accumulation order is reproducible
    for name in func.reachable_order():
        block = func.blocks[name]
        f = freq.get(name, 1.0)
        for phi in block.phis:
            costs[phi.target] = costs.get(phi.target, 0.0) + f
            for pred, v in phi.args.items():
                costs[v] = costs.get(v, 0.0) + freq.get(pred, 1.0)
        for instr in block.instrs:
            for v in instr.defs:
                costs[v] = costs.get(v, 0.0) + f
            for v in instr.uses:
                costs[v] = costs.get(v, 0.0) + f
    return costs


def spill_everywhere(
    func: Function, variables: Set[Var], tracer: Tracer = NULL_TRACER
) -> Function:
    """Rewrite ``func`` with the given variables spilled everywhere.

    Every definition of a spilled variable stores to its slot; every use
    loads into a fresh name.  φ-functions are handled through memory:

    * a φ whose *target* is spilled disappears — its arguments are
      stored into the shared slot at the end of each predecessor (the
      classical memory-coalescing of a spilled φ-web);
    * a surviving φ with a spilled *argument* gets a load at the end of
      the predecessor.

    Critical edges are split first whenever φs are involved, so the
    edge code cannot leak onto unrelated paths (the footnote-1 subtlety
    of the paper).  Returns a new function; ``func`` is untouched.
    """
    out = _copy_function(func)
    if not variables:
        return out
    if any(b.phis for b in out.blocks.values()):
        out.split_critical_edges()
    # close downstream over φs: if an argument is spilled, spill the
    # target too.  Otherwise the target's φ would need a reload of the
    # argument at the end of the predecessor, re-creating exactly the
    # register pressure the spill was meant to remove (all φ-sources of
    # a join are simultaneously live at the predecessor's end).
    variables = set(variables)
    changed = True
    while changed:
        changed = False
        for block in out.blocks.values():
            for phi in block.phis:
                if phi.target not in variables and (
                    set(phi.args.values()) & variables
                ):
                    variables.add(phi.target)
                    changed = True
    tracer.count("spill.variables", len(variables))
    counter = [0]

    def fresh(v: Var) -> Var:
        counter[0] += 1
        return f"{v}.r{counter[0]}"

    slot: Dict[Var, Var] = {}

    def slot_of(v: Var) -> Var:
        return slot.setdefault(v, f"slot({v})")

    # unify slots across spilled φ-webs
    for block in out.blocks.values():
        for phi in block.phis:
            if phi.target in variables:
                shared = slot_of(phi.target)
                for v in set(phi.args.values()) & variables:
                    slot[v] = shared

    # φ fixes to apply at the ends of predecessor blocks
    edge_code: Dict[str, List[Instr]] = {b: [] for b in out.blocks}
    for name, block in out.blocks.items():
        surviving: List[Phi] = []
        for phi in block.phis:
            if phi.target in variables:
                for pred, arg in phi.args.items():
                    if arg not in variables:
                        edge_code[pred].append(
                            Instr("store", (slot_of(phi.target),), (arg,))
                        )
                        tracer.count("spill.stores")
                    # a spilled argument already stores to the shared
                    # slot at its definition
            else:
                for pred, arg in list(phi.args.items()):
                    if arg in variables:
                        tmp = fresh(arg)
                        edge_code[pred].append(
                            Instr("load", (tmp,), (slot_of(arg),))
                        )
                        tracer.count("spill.loads")
                        phi.args[pred] = tmp
                surviving.append(phi)
        block.phis = surviving

    for name, block in out.blocks.items():
        new_instrs: List[Instr] = []
        for instr in block.instrs:
            uses = list(instr.uses)
            for i, v in enumerate(uses):
                if v in variables:
                    tmp = fresh(v)
                    new_instrs.append(Instr("load", (tmp,), (slot_of(v),)))
                    tracer.count("spill.loads")
                    uses[i] = tmp
            defs = list(instr.defs)
            stores: List[Instr] = []
            for i, v in enumerate(defs):
                if v in variables:
                    tmp = fresh(v)
                    stores.append(Instr("store", (slot_of(v),), (tmp,)))
                    tracer.count("spill.stores")
                    defs[i] = tmp
            # a rewritten mov keeps its 1-def/1-use shape, so it stays a
            # coalescable copy between the fresh names
            new_instrs.append(Instr(instr.op, tuple(defs), tuple(uses)))
            new_instrs.extend(stores)
        cut = len(new_instrs)
        if new_instrs and new_instrs[-1].op in _TERMINATORS:
            cut -= 1
        new_instrs[cut:cut] = edge_code[name]
        block.instrs = new_instrs
    return out


def memory_slots(func: Function) -> Set[Var]:
    """The memory slot pseudo-variables present after spilling."""
    return {v for v in func.variables() if is_memory_slot(v)}


def strip_memory_slots(variables: Set[Var]) -> Set[Var]:
    """Filter out slot pseudo-variables from a variable set."""
    return {v for v in variables if not is_memory_slot(v)}


def is_spill_temp(v: Var) -> bool:
    """True for the fresh names introduced by :func:`spill_everywhere`."""
    tail = str(v).rsplit(".", 1)
    return len(tail) == 2 and tail[1].startswith("r") and tail[1][1:].isdigit()
