"""Two-phase SSA-based register allocator.

The decoupled design the paper credits to Appel–George and the SSA
line of work (Section 1): first *spill* until Maxlive ≤ k — after
which the strict-SSA interference graph is chordal with ω = Maxlive ≤ k
(Theorem 1), hence colourable with k colours without further spills —
then *colour and coalesce* in one final phase on a greedy-k-colorable
graph (Property 1 guarantees the Chaitin elimination machinery still
applies).

The coalescing phase is pluggable: any conservative test from
:mod:`repro.coalescing.conservative`, or the optimistic strategy —
which is exactly the comparison surface of the E1/E2 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.debug import maybe_check_allocation
from ..coalescing.base import CoalescingResult
from ..coalescing.conservative import conservative_coalesce
from ..coalescing.optimistic import optimistic_coalesce
from ..graphs.chordal import is_chordal
from ..graphs.greedy import greedy_k_coloring
from ..graphs.interference import InterferenceGraph
from ..ir.cfg import Function
from ..ir.interference import chaitin_interference, set_frequencies_from_loops
from ..ir.instructions import Var
from ..ir.liveness import compute_liveness, maxlive
from ..ir.ssa import construct_ssa
from ..obs import NULL_TRACER, Tracer
from .chaitin import AllocationResult
from .spill import is_memory_slot, is_spill_temp, spill_costs, spill_everywhere


@dataclass
class SSAAllocationStats:
    """Extra reporting for the two-phase allocator."""

    maxlive_before: int = 0
    maxlive_after: int = 0
    spill_rounds: int = 0
    chordal: bool = False
    coalescing: Optional[CoalescingResult] = None


def _pressure_maxlive(func: Function) -> int:
    """Maxlive ignoring memory-slot pseudo-variables."""
    info = compute_liveness(func)
    best = 0
    for name in func.reachable():
        block = func.blocks[name]
        live = {v for v in info.live_out[name] if not is_memory_slot(v)}
        best = max(best, len(live))
        for instr in reversed(block.instrs):
            defs = {d for d in instr.defs if not is_memory_slot(d)}
            best = max(best, len(live | defs))
            live -= set(instr.defs)
            live |= {u for u in instr.uses if not is_memory_slot(u)}
        phi_targets = {
            p.target for p in block.phis if not is_memory_slot(p.target)
        }
        best = max(best, len(live | phi_targets))
    return best


def spill_to_pressure(
    func: Function,
    k: int,
    max_rounds: int = 64,
    tracer: Tracer = NULL_TRACER,
) -> Tuple[Function, List[Var], int]:
    """Phase 1: spill everywhere until Maxlive ≤ k.

    Candidate order: highest spill benefit first — cost-to-degree is
    approximated by (live-range pressure contribution) / (def+use
    cost).  Simple and effective for the study; the paper's companion
    work treats optimal spilling separately.

    Returns (rewritten function, spilled variables, rounds).
    """
    work = func
    spilled: List[Var] = []
    rounds = 0
    while _pressure_maxlive(work) > k:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("pressure spilling did not converge")
        info = compute_liveness(work)
        costs = spill_costs(work)
        # find a maximal-pressure point and spill its cheapest live var
        best_point: Tuple[str, int] = ("", -1)
        best_live: Set[Var] = set()
        # insertion-order walk: ties between equal-pressure points are
        # broken by visit order, which must not follow string hashing
        for name in work.reachable_order():
            block = work.blocks[name]
            live = {v for v in info.live_out[name] if not is_memory_slot(v)}
            if len(live) > len(best_live):
                best_live, best_point = set(live), (name, len(block.instrs))
            for i in range(len(block.instrs) - 1, -1, -1):
                instr = block.instrs[i]
                cand = {
                    v
                    for v in (live | set(instr.defs))
                    if not is_memory_slot(v)
                }
                if len(cand) > len(best_live):
                    best_live, best_point = set(cand), (name, i)
                live -= set(instr.defs)
                live |= {u for u in instr.uses if not is_memory_slot(u)}
            # the block-top point where all φ-targets are defined in
            # parallel (counted by maxlive, so it must be spillable too)
            phi_targets = {
                p.target for p in block.phis if not is_memory_slot(p.target)
            }
            cand = {
                v for v in (live | phi_targets) if not is_memory_slot(v)
            }
            if len(cand) > len(best_live):
                best_live, best_point = set(cand), (name, -1)
        if not best_live:
            break
        # never re-spill a reload temporary (".rN"): its range is already
        # minimal, so spilling it again cannot reduce pressure
        spillable = {v for v in best_live if not is_spill_temp(v)}
        if not spillable:
            raise RuntimeError(
                "register pressure cannot be reduced below k: a single "
                "instruction keeps more than k reload temporaries live"
            )
        victim = min(spillable, key=lambda v: (costs.get(v, 0.0), str(v)))
        spilled.append(victim)
        tracer.count("spill.rounds")
        tracer.event("spill.victim", var=str(victim), round=rounds)
        work = spill_everywhere(work, {victim}, tracer=tracer)
    return work, spilled, rounds



def ssa_allocate(
    func: Function,
    k: int,
    coalescing: str = "brute",
    tracer: Tracer = NULL_TRACER,
) -> Tuple[AllocationResult, SSAAllocationStats]:
    """Run the full two-phase allocator.

    ``coalescing`` is one of the conservative test names
    ("briggs", "george", "briggs_george", "brute") or "optimistic" or
    "none".  ``tracer`` records per-phase wall time (construct / spill /
    build / coalesce / colour) and the phase counters.
    """
    if k <= 0:
        raise ValueError("need at least one register")
    if not func.frequency:
        set_frequencies_from_loops(func)
    with tracer.span("ssa/construct"):
        ssa = construct_ssa(func)
    stats = SSAAllocationStats(maxlive_before=_pressure_maxlive(ssa))
    tracer.count("ssa.maxlive_before", stats.maxlive_before)

    # phase 1: spill
    with tracer.span("ssa/spill"):
        lowered, spilled, rounds = spill_to_pressure(ssa, k, tracer=tracer)
    stats.spill_rounds = rounds
    stats.maxlive_after = _pressure_maxlive(lowered)
    tracer.count("ssa.spill_rounds", rounds)
    tracer.count("ssa.spilled", len(spilled))
    tracer.count("ssa.maxlive_after", stats.maxlive_after)

    # phase 2: colour + coalesce
    with tracer.span("ssa/build"):
        graph = chaitin_interference(lowered, weighted=True)
        for v in [v for v in graph.vertices if is_memory_slot(v)]:
            graph.remove_vertex(v)
        stats.chordal = is_chordal(graph.structural_graph())

    if coalescing == "none":
        quotient = graph
        mapping = {v: v for v in graph.vertices}
        coalesced_moves = 0
    elif coalescing == "biased":
        # no merging at all: steer the colour selection instead
        from ..coalescing.biased import biased_greedy_coloring

        with tracer.span("ssa/coalesce"):
            coloring = biased_greedy_coloring(graph, k, tracer=tracer)
        if coloring is None:
            raise AssertionError(
                "phase-2 graph not greedy-k-colorable despite Maxlive ≤ k"
            )
        result = AllocationResult(
            function=lowered,
            assignment=dict(coloring),
            k=k,
            spilled=spilled,
            coalesced_moves=sum(
                1
                for u, v, _ in graph.affinities()
                if coloring[u] == coloring[v]
            ),
        )
        maybe_check_allocation(result)
        return result, stats
    else:
        with tracer.span("ssa/coalesce"):
            if coalescing == "optimistic":
                result = optimistic_coalesce(graph, k, tracer=tracer)
            elif coalescing == "chordal":
                from ..coalescing.chordal_strategy import (
                    chordal_incremental_coalesce,
                )

                result = chordal_incremental_coalesce(graph, k, tracer=tracer)
            else:
                result = conservative_coalesce(
                    graph, k, test=coalescing, tracer=tracer
                )
        stats.coalescing = result
        quotient = result.coalescing.coalesced_graph()
        mapping = result.coalescing.as_mapping()
        coalesced_moves = result.num_coalesced

    with tracer.span("ssa/color"):
        coloring = greedy_k_coloring(quotient, k)
    if coloring is None:
        raise AssertionError(
            "phase-2 graph not greedy-k-colorable despite Maxlive ≤ k"
        )
    assignment = {v: coloring[mapping[v]] for v in graph.vertices}
    result = AllocationResult(
        function=lowered,
        assignment=assignment,
        k=k,
        spilled=spilled,
        coalesced_moves=coalesced_moves,
    )
    maybe_check_allocation(result)
    return result, stats
