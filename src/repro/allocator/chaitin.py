"""A Chaitin–Briggs register allocator with iterated coalescing.

The classical framework the paper describes in Section 1: simplify /
coalesce / freeze / potential-spill / select, iterated after actual
spills.  Coalescing inside the loop is conservative (Briggs + George by
default, configurable — including the brute-force test, to measure the
paper's claim that it coalesces strictly more).

This allocator is the baseline of the E3 benchmark and the substrate
for the "interplay of spilling and coalescing" discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.debug import maybe_check_allocation
from ..graphs.interference import InterferenceGraph
from ..ir.cfg import Function
from ..ir.interference import chaitin_interference, set_frequencies_from_loops
from ..ir.instructions import Var
from ..coalescing.conservative import TESTS, brute_force_test
from ..graphs.greedy import is_greedy_k_colorable
from ..obs import NULL_TRACER, Tracer
from .spill import is_memory_slot, is_spill_temp, spill_costs, spill_everywhere


@dataclass
class AllocationResult:
    """Outcome of a register allocation."""

    function: Function              # the final (possibly spill-rewritten) code
    assignment: Dict[Var, int]      # variable -> register
    k: int
    spilled: List[Var] = field(default_factory=list)
    coalesced_moves: int = 0
    iterations: int = 1

    @property
    def residual_moves(self) -> int:
        """Copy instructions whose operands got different registers."""
        count = 0
        for _, _, instr in self.function.moves():
            dst, src = instr.defs[0], instr.uses[0]
            if self.assignment.get(dst) != self.assignment.get(src):
                count += 1
        return count

    def verify(self) -> List[str]:
        """Check the assignment against the final interference graph."""
        problems: List[str] = []
        graph = chaitin_interference(self.function, weighted=False)
        for u, v in graph.edges():
            if is_memory_slot(u) or is_memory_slot(v):
                continue
            cu, cv = self.assignment.get(u), self.assignment.get(v)
            if cu is None or cv is None:
                problems.append(f"unassigned interfering variable {u} / {v}")
            elif cu == cv:
                problems.append(f"{u} and {v} interfere but share r{cu}")
        for v, c in self.assignment.items():
            if not 0 <= c < self.k:
                problems.append(f"{v} got out-of-range register r{c}")
        return problems


def _strip_slots(graph: InterferenceGraph) -> None:
    for v in [v for v in graph.vertices if is_memory_slot(v)]:
        graph.remove_vertex(v)


SPILL_METRICS = ("cost_degree", "cost", "degree")


def chaitin_allocate(
    func: Function,
    k: int,
    coalesce_test: str = "briggs_george",
    max_iterations: int = 12,
    spill_metric: str = "cost_degree",
    tracer: Tracer = NULL_TRACER,
) -> AllocationResult:
    """Run the full Chaitin–Briggs loop on ``func`` with ``k`` registers.

    Iterates build → simplify/coalesce/freeze/spill → select; on actual
    spills the code is rewritten (spill everywhere) and the loop
    restarts.  Raises ``RuntimeError`` if spilling fails to converge
    (cannot happen while each round spills at least one variable with a
    live range longer than a point, but guarded anyway).

    ``spill_metric`` picks the potential-spill heuristic: Chaitin's
    classic cost/degree ratio (default), plain minimum cost, or maximum
    degree — compared in the spill ablation bench.
    """
    if k <= 0:
        raise ValueError("need at least one register")
    if spill_metric not in SPILL_METRICS:
        raise ValueError(f"unknown spill metric {spill_metric!r}")
    test_fn = TESTS[coalesce_test]
    if not func.frequency:
        set_frequencies_from_loops(func)
    work_func = func
    total_spilled: List[Var] = []
    for iteration in range(1, max_iterations + 1):
        tracer.count("chaitin.iterations")
        with tracer.span("chaitin/build"):
            graph = chaitin_interference(work_func, weighted=True)
            _strip_slots(graph)
            costs = spill_costs(work_func)
        with tracer.span("chaitin/color"):
            assignment, coalesced, actual_spills = _color_round(
                graph, k, test_fn, costs, spill_metric, tracer=tracer
            )
        if not actual_spills:
            result = AllocationResult(
                function=work_func,
                assignment=assignment,
                k=k,
                spilled=total_spilled,
                coalesced_moves=coalesced,
                iterations=iteration,
            )
            maybe_check_allocation(result)
            return result
        total_spilled.extend(actual_spills)
        tracer.count("chaitin.actual_spills", len(actual_spills))
        with tracer.span("chaitin/spill-rewrite"):
            work_func = spill_everywhere(
                work_func, set(actual_spills), tracer=tracer
            )
    raise RuntimeError("spilling did not converge")


def _color_round(
    graph: InterferenceGraph,
    k: int,
    test_fn,
    costs: Dict[Var, float],
    spill_metric: str = "cost_degree",
    tracer: Tracer = NULL_TRACER,
) -> Tuple[Dict[Var, int], int, List[Var]]:
    """One simplify/coalesce/freeze/spill/select round.

    Returns (assignment over merged classes expanded to variables,
    number of coalesced moves, actual spills).
    """
    work = graph.copy()
    # members of each current vertex (for expanding colours at the end)
    members: Dict[Var, Set[Var]] = {v: {v} for v in work.vertices}
    stack: List[Tuple[Var, bool]] = []  # (vertex, is_potential_spill)
    coalesced_moves = 0
    frozen: Set[frozenset] = set()

    def move_related(v: Var) -> bool:
        return any(
            frozenset((a, b)) not in frozen
            for a, b, _ in work.affinities()
            if v in (a, b)
        )

    while len(work):
        # 1. simplify: a non-move-related vertex of low degree
        candidate = next(
            (
                v
                for v in work.vertices
                if work.degree(v) < k and not move_related(v)
            ),
            None,
        )
        if candidate is not None:
            stack.append((candidate, False))
            work.remove_vertex(candidate)
            tracer.count("chaitin.simplified")
            continue
        # 2. coalesce: a conservative move.  The brute-force test is an
        # absolute check ("is the merged graph greedy-k-colorable"), so
        # it is only meaningful when the current graph already is — the
        # paper's setting of coalescing after spilling.  Mid-spill we
        # fall back to the relative Briggs+George rules.
        round_test = test_fn
        if test_fn is brute_force_test and not is_greedy_k_colorable(work, k):
            round_test = TESTS["briggs_george"]
        merged = False
        for a, b, _ in sorted(
            work.affinities(), key=lambda t: (-t[2], str(t[0]), str(t[1]))
        ):
            if frozenset((a, b)) in frozen or work.has_edge(a, b):
                continue
            tracer.count("moves.attempted")
            if round_test(work, a, b, k):
                work.merge_in_place(a, b)
                members[a] = members[a] | members.pop(b)
                coalesced_moves += 1
                merged = True
                tracer.count("moves.coalesced")
                break
            tracer.count("moves.rejected")
        if merged:
            continue
        # 3. freeze: give up the cheapest move of a low-degree vertex
        freeze_candidate = next(
            (
                (a, b)
                for a, b, _ in sorted(work.affinities(), key=lambda t: t[2])
                if frozenset((a, b)) not in frozen
                and (work.degree(a) < k or work.degree(b) < k)
            ),
            None,
        )
        if freeze_candidate is not None:
            frozen.add(frozenset(freeze_candidate))
            tracer.count("chaitin.frozen_moves")
            continue
        # 4. potential spill: cheapest cost / degree ratio; reload
        # temporaries last (re-spilling them cannot reduce pressure)
        def spill_key(v: Var):
            temp = all(is_spill_temp(m) for m in members[v])
            cost = sum(costs.get(m, 1.0) for m in members[v])
            if spill_metric == "cost":
                metric = cost
            elif spill_metric == "degree":
                metric = -work.degree(v)
            else:  # cost/degree, Chaitin's classic
                metric = cost / max(1, work.degree(v))
            return (temp, metric, str(v))

        spill_v = min(work.vertices, key=spill_key)
        stack.append((spill_v, True))
        work.remove_vertex(spill_v)
        tracer.count("chaitin.potential_spills")

    # select: colour merged classes in reverse removal order; a class's
    # forbidden colours come from any member adjacent to any coloured
    # member
    owner = {m: rep for rep, ms in members.items() for m in ms}
    assignment: Dict[Var, int] = {}
    actual_spills: List[Var] = []
    colored: Dict[Var, int] = {}
    for v, _potential in reversed(stack):
        used: Set[int] = set()
        for m in members[v]:
            for u in graph.neighbors_view(m):
                rep = owner[u]
                if rep in colored:
                    used.add(colored[rep])
        c = next((c for c in range(k) if c not in used), None)
        if c is None:
            actual_spills.extend(members[v])
            continue
        colored[v] = c
        for m in members[v]:
            assignment[m] = c
    return assignment, coalesced_moves, actual_spills
