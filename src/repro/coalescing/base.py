"""Shared machinery for the coalescing strategies.

Every strategy consumes an :class:`~repro.graphs.InterferenceGraph` and
produces a :class:`CoalescingResult`: the partition of the vertices
(``coalescing``), the quotient graph, and bookkeeping about which
affinities were coalesced and what the residual move cost is — the
paper's objective "at most K affinities are not coalesced".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graphs.graph import Vertex
from ..graphs.interference import Coalescing, InterferenceGraph


@dataclass
class CoalescingResult:
    """Outcome of a coalescing strategy on an interference graph."""

    graph: InterferenceGraph
    coalescing: Coalescing
    strategy: str
    #: affinities (u, v, w) the strategy coalesced
    coalesced: List[Tuple[Vertex, Vertex, float]] = field(default_factory=list)
    #: affinities (u, v, w) left in the code (residual moves)
    given_up: List[Tuple[Vertex, Vertex, float]] = field(default_factory=list)

    @property
    def coalesced_weight(self) -> float:
        """Total weight of removed moves."""
        return self.coalescing.coalesced_weight()

    @property
    def residual_weight(self) -> float:
        """Total weight of remaining moves (the paper's K)."""
        return self.coalescing.uncoalesced_weight()

    @property
    def num_coalesced(self) -> int:
        """Number of affinity pairs coalesced."""
        return self.graph.num_affinities() - len(
            self.coalescing.uncoalesced_affinities()
        )

    def coalesced_graph(self) -> InterferenceGraph:
        """The quotient graph :math:`G_f`."""
        return self.coalescing.coalesced_graph()

    def summary(self) -> str:
        """One-line human-readable outcome."""
        total = self.graph.total_affinity_weight()
        return (
            f"{self.strategy}: coalesced {self.num_coalesced}/"
            f"{self.graph.num_affinities()} affinities, "
            f"residual weight {self.residual_weight:g}/{total:g}"
        )


def affinities_by_weight(graph: InterferenceGraph) -> List[Tuple[Vertex, Vertex, float]]:
    """Affinities sorted by decreasing weight (ties broken stably by
    name, for determinism)."""
    return sorted(
        graph.affinities(), key=lambda a: (-a[2], str(a[0]), str(a[1]))
    )


def empty_coalescing(graph: InterferenceGraph) -> Coalescing:
    """The identity coalescing (no affinity coalesced)."""
    return Coalescing(graph)
