"""Exact optimal conservative coalescing for small instances.

The optimization version of Theorem 3's problem: coalesce a
maximum-weight set of affinities such that the quotient graph stays
k-colorable (or greedy-k-colorable).  NP-complete, so this module is a
branch-and-bound intended as the ground-truth baseline for the strategy
comparison benches and the reduction tests.

Key pruning fact: *k-colorability is anti-monotone under coalescing* —
merging more vertices can only make colouring harder — so a partial
merge whose quotient is already not k-colorable can be pruned for the
"k-colorable" target, and serves as a relaxation bound for the
"greedy" target (greedy-k-colorable graphs are k-colorable).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..budget import Budget
from ..graphs.coloring import is_k_colorable
from ..graphs.graph import Vertex
from ..graphs.greedy import is_greedy_k_colorable
from ..graphs.interference import Coalescing, InterferenceGraph
from .base import CoalescingResult, affinities_by_weight


def optimal_conservative_coalescing(
    graph: InterferenceGraph,
    k: int,
    target: str = "greedy",
    node_limit: int = 500_000,
    budget: Optional[Budget] = None,
) -> CoalescingResult:
    """Branch-and-bound optimum of conservative coalescing.

    ``target`` is "greedy" (quotient must be greedy-k-colorable — what
    heuristics actually maintain) or "kcolorable" (plain
    k-colorability, the paper's base problem).  Maximizes coalesced
    weight = minimizes the residual move cost K.

    Raises ``RuntimeError`` past ``node_limit`` search nodes.  An
    optional :class:`repro.budget.Budget` is checked at every search
    node and raises the typed :exc:`repro.budget.BudgetExceeded`
    (a ``RuntimeError`` subclass) — the cooperative in-process timeout
    the :mod:`repro.engine` worker pool relies on.
    """
    if target not in ("greedy", "kcolorable"):
        raise ValueError(f"unknown target {target!r}")
    affinities = affinities_by_weight(graph)
    suffix_weight = [0.0] * (len(affinities) + 1)
    for i in range(len(affinities) - 1, -1, -1):
        suffix_weight[i] = suffix_weight[i + 1] + affinities[i][2]

    final_check = (
        is_greedy_k_colorable if target == "greedy" else is_k_colorable
    )
    best_cost = [float("inf")]
    best_sets: List[Optional[List[bool]]] = [None]
    nodes = [0]
    choice: List[bool] = []

    def quotient(c: Coalescing) -> InterferenceGraph:
        return c.coalesced_graph()

    def recurse(i: int, coalescing: Coalescing, cost: float) -> None:
        nodes[0] += 1
        if nodes[0] > node_limit:
            raise RuntimeError("optimal_conservative_coalescing: node limit")
        if budget is not None:
            budget.check()
        if cost >= best_cost[0]:
            return
        if i == len(affinities):
            if final_check(quotient(coalescing), k):
                best_cost[0] = cost
                best_sets[0] = list(choice)
            return
        u, v, w = affinities[i]
        if coalescing.same_class(u, v):
            choice.append(True)
            recurse(i + 1, coalescing, cost)
            choice.pop()
            return
        if coalescing.can_union(u, v):
            snap = _snapshot(coalescing)
            coalescing.union(u, v)
            # anti-monotonicity: a quotient that is not even k-colorable
            # can never recover by further merging
            if is_k_colorable(quotient(coalescing), k):
                choice.append(True)
                recurse(i + 1, coalescing, cost)
                choice.pop()
            _restore(coalescing, snap)
        choice.append(False)
        recurse(i + 1, coalescing, cost + w)
        choice.pop()

    recurse(0, Coalescing(graph), 0.0)
    if best_sets[0] is None:
        raise ValueError(
            f"graph admits no {target} quotient at all with k={k} "
            "(input not k-colorable)"
        )

    coalescing = Coalescing(graph)
    for (u, v, _), take in zip(affinities, best_sets[0]):
        if take:
            coalescing.union(u, v)
    coalesced = [
        (u, v, w) for u, v, w in affinities if coalescing.same_class(u, v)
    ]
    given_up = [
        (u, v, w)
        for u, v, w in affinities
        if not coalescing.same_class(u, v)
    ]
    return CoalescingResult(
        graph=graph,
        coalescing=coalescing,
        strategy=f"exact-{target}",
        coalesced=coalesced,
        given_up=given_up,
    )


def _snapshot(c: Coalescing):
    return (
        dict(c._parent),
        dict(c._rank),
        {k: set(v) for k, v in c._members.items()},
    )


def _restore(c: Coalescing, snap) -> None:
    parent, rank, members = snap
    c._parent = dict(parent)
    c._rank = dict(rank)
    c._members = {k: set(v) for k, v in members.items()}
