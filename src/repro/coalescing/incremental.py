"""Incremental conservative coalescing (Section 4, Theorems 4 and 5).

The problem: given a k-colorable graph and ONE affinity (x, y), decide
whether a k-colouring with f(x) = f(y) exists.

* On arbitrary k-colorable graphs this is NP-complete even for k = 3
  (Theorem 4) — :func:`incremental_coalescible_exact` answers it by
  exact search and is the oracle the reduction tests use.
* On **chordal** graphs it is polynomial (Theorem 5) —
  :func:`chordal_incremental_coalescible` implements the paper's
  algorithm: clique-tree path, subtree-to-interval projection, padding
  with short intervals, and a left-to-right marking (reachability) over
  disjoint contiguous intervals.

The chordal routine also returns a *witness*: the set of vertices to
merge with {x, y} so the coalesced graph stays chordal with unchanged
clique number — from which an explicit k-colouring with f(x) = f(y) is
recovered (``chordal_incremental_coloring``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graphs.chordal import (
    CliqueTree,
    chordal_coloring,
    clique_tree,
    is_chordal,
)
from ..graphs.coloring import k_coloring_exact
from ..graphs.graph import Graph, Vertex
from ..obs import NULL_TRACER, Tracer


def incremental_coalescible_exact(
    graph: Graph, x: Vertex, y: Vertex, k: int
) -> Optional[Dict[Vertex, int]]:
    """Exact answer on any graph: a k-colouring with f(x) = f(y), or
    None.  Exponential worst case (the problem is NP-complete)."""
    return k_coloring_exact(graph, k, same_color=[(x, y)])


@dataclass
class IntervalWitness:
    """Outcome of the Theorem 5 algorithm.

    ``mergeable`` — can x and y share a colour; ``chain`` — the vertices
    (other than x, y) whose subtrees form the disjoint interval chain
    covering the clique-tree path (empty when x, y sit in different
    connected components or the path is trivial); ``path`` — the clique
    indices of the path used.
    """

    mergeable: bool
    chain: List[Vertex]
    path: List[int]


def chordal_incremental_coalescible(
    graph: Graph, x: Vertex, y: Vertex, k: int, tracer: Tracer = NULL_TRACER
) -> IntervalWitness:
    """Theorem 5: polynomial incremental coalescing test on a chordal
    graph.

    Steps, following the paper's proof:

    1. If x and y interfere, or ω(G) > k, the answer is no.
    2. Build the clique tree; take the path P between the subtrees
       ``T_x`` and ``T_y``, trimmed so only its first node meets
       ``T_x`` and only its last meets ``T_y``.
    3. Project every vertex's subtree onto P — each projection is a
       contiguous interval because the intersection of two subtrees of
       a tree is connected.
    4. Pad every node of P to exactly k intervals with fresh
       single-node intervals (possible since each node is a clique of
       size ≤ ω(G) ≤ k).
    5. x and y can share a colour iff there is a chain of pairwise
       disjoint contiguous intervals from ``I_x`` to ``I_y`` covering P
       — found by a left-to-right marking in O(|V| · ω(G)).

    ``tracer`` counts calls/verdicts and times the clique-tree and
    marking phases.
    """
    tracer.count("incremental.calls")
    with tracer.span("incremental-test"):
        witness = _coalescible_impl(graph, x, y, k, tracer)
    if witness.mergeable:
        tracer.count("incremental.mergeable")
    else:
        tracer.count("incremental.refused")
    tracer.count("incremental.path_nodes", len(witness.path))
    return witness


def _coalescible_impl(
    graph: Graph, x: Vertex, y: Vertex, k: int, tracer: Tracer
) -> IntervalWitness:
    if k <= 0:
        return IntervalWitness(False, [], [])
    tracer.count("queries.interference")
    if graph.has_edge(x, y):
        return IntervalWitness(False, [], [])
    with tracer.span("clique-tree"):
        tree = clique_tree(graph)
    if tree.cliques and max(len(c) for c in tree.cliques) > k:
        return IntervalWitness(False, [], [])

    x_nodes = tree.subtree.get(x, set())
    y_nodes = tree.subtree.get(y, set())
    if not x_nodes or not y_nodes:
        raise KeyError("x and y must be vertices of the graph")
    if x_nodes & y_nodes:
        # same maximal clique but no edge is impossible
        raise AssertionError("non-adjacent vertices share a maximal clique")

    path = _tree_path_between(tree, x_nodes, y_nodes)
    if path is None:
        # different connected components: colour them independently
        return IntervalWitness(True, [], [])

    # 3. project subtrees onto the path
    pos = {node: i for i, node in enumerate(path)}
    n = len(path)
    intervals: Dict[Vertex, Tuple[int, int]] = {}
    for v, nodes in tree.subtree.items():
        hit = [pos[t] for t in nodes if t in pos]
        if hit:
            lo, hi = min(hit), max(hit)
            intervals[v] = (lo, hi)
    ix = intervals[x]
    iy = intervals[y]
    if ix != (0, 0) or iy != (n - 1, n - 1):
        raise AssertionError("path trimming failed")

    # 4. how many fresh single-node intervals fit at each node
    load = [0] * n
    for lo, hi in intervals.values():
        for i in range(lo, hi + 1):
            load[i] += 1
    slack = [k - c for c in load]
    if any(s < 0 for s in slack):
        raise AssertionError("clique larger than k survived the ω check")

    # 5. marking: reached[p] = a disjoint chain from I_x ends exactly at p
    by_lo: Dict[int, List[Tuple[int, Vertex]]] = {}
    for v, (lo, hi) in intervals.items():
        if v in (x, y):
            continue
        by_lo.setdefault(lo, []).append((hi, v))
    parent: Dict[int, Tuple[int, Optional[Vertex]]] = {}
    frontier = [0]
    reached: Set[int] = {0}
    with tracer.span("marking"):
        while frontier:
            p = frontier.pop()
            nxt = p + 1
            if nxt > n - 1:
                continue
            # fresh single-node interval at nxt
            if slack[nxt] > 0 and nxt not in reached and nxt != n - 1:
                reached.add(nxt)
                parent[nxt] = (p, None)
                frontier.append(nxt)
            for hi, v in by_lo.get(nxt, ()):  # real intervals starting at nxt
                if hi <= n - 2 and hi not in reached:
                    reached.add(hi)
                    parent[hi] = (p, v)
                    frontier.append(hi)
    # the chain must hand over to I_y = [n-1, n-1]; n ≥ 2 here because
    # x and y never share a maximal clique
    if (n - 2) not in reached:
        return IntervalWitness(False, [], path)

    # reconstruct the chain of real vertices
    chain: List[Vertex] = []
    p = n - 2
    while p != 0:
        prev, v = parent[p]
        if v is not None:
            chain.append(v)
        p = prev
    chain.reverse()
    return IntervalWitness(True, chain, path)


def _tree_path_between(
    tree: CliqueTree, from_nodes: Set[int], to_nodes: Set[int]
) -> Optional[List[int]]:
    """The clique-tree path from ``from_nodes`` to ``to_nodes``, trimmed
    so only its endpoints belong to the respective subtrees.  None when
    they lie in different components."""
    adj = tree.adjacency()
    prev: Dict[int, int] = {s: s for s in from_nodes}
    queue = list(from_nodes)
    end: Optional[int] = None
    for q in queue:
        if q in to_nodes:
            end = q
            break
    i = 0
    while end is None and i < len(queue):
        node = queue[i]
        i += 1
        for t in adj[node]:
            if t not in prev:
                prev[t] = node
                if t in to_nodes:
                    end = t
                    break
                queue.append(t)
    if end is None:
        return None
    path = [end]
    while prev[path[-1]] != path[-1]:
        path.append(prev[path[-1]])
    path.reverse()
    # path now runs from some node of from_nodes to the first node of
    # to_nodes; trim the front so only path[0] is in from_nodes
    last_from = max(i for i, t in enumerate(path) if t in from_nodes)
    path = path[last_from:]
    return path


def chordal_incremental_coloring(
    graph: Graph, x: Vertex, y: Vertex, k: int
) -> Optional[Dict[Vertex, int]]:
    """An explicit k-colouring with f(x) = f(y) on a chordal graph, or
    None.

    Uses the witness chain from Theorem 5: merging x, y, and the chain
    vertices yields a chordal graph with ω ≤ k; its optimal colouring is
    pulled back to the original vertices.
    """
    witness = chordal_incremental_coalescible(graph, x, y, k)
    if not witness.mergeable:
        return None
    merged = graph.copy()
    group = [x, *witness.chain, y]
    rep = group[0]
    for v in group[1:]:
        rep = merged.merge_in_place(rep, v, into=rep)
    coloring = chordal_coloring(merged)
    if max(coloring.values(), default=-1) + 1 > k:
        raise AssertionError("witness merge raised the clique number")
    out = dict(coloring)
    for v in group:
        out[v] = coloring[rep]
    for v in graph.vertices:
        if v not in out:
            raise AssertionError(f"vertex {v!r} lost during merge")
    return out
