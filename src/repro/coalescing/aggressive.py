"""Aggressive coalescing (Section 3).

Remove as many moves as possible with *no* constraint on the number of
registers: only interferences can prevent a merge.  The optimization
problem is NP-complete (Theorem 2, by reduction from multiway cut), so
the library offers:

* :func:`aggressive_coalesce` — the standard greedy heuristic: process
  affinities by decreasing weight and union the endpoint classes
  whenever no interference crosses them (this is Briggs' aggressive
  phase and the classical out-of-SSA move-minimization);
* :func:`aggressive_coalesce_exact` — an exact branch-and-bound for the
  small instances used to validate the Theorem 2 reduction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..graphs.graph import Vertex
from ..graphs.interference import Coalescing, InterferenceGraph
from ..obs import NULL_TRACER, Tracer
from .base import CoalescingResult, affinities_by_weight


def aggressive_coalesce(
    graph: InterferenceGraph, tracer: Tracer = NULL_TRACER
) -> CoalescingResult:
    """Greedy aggressive coalescing, heaviest affinities first."""
    coalescing = Coalescing(graph)
    coalesced: List[Tuple[Vertex, Vertex, float]] = []
    given_up: List[Tuple[Vertex, Vertex, float]] = []
    tracer.count("affinities.total", graph.num_affinities())
    with tracer.span("aggressive"):
        for u, v, w in affinities_by_weight(graph):
            if coalescing.same_class(u, v):
                coalesced.append((u, v, w))
                tracer.count("moves.transitive")
                continue
            tracer.count("moves.attempted")
            tracer.count("queries.interference")
            if coalescing.can_union(u, v):
                coalescing.union(u, v)
                coalesced.append((u, v, w))
                tracer.count("moves.coalesced")
            else:
                given_up.append((u, v, w))
                tracer.count("moves.constrained")
    return CoalescingResult(
        graph=graph,
        coalescing=coalescing,
        strategy="aggressive",
        coalesced=coalesced,
        given_up=given_up,
    )


def aggressive_coalesce_exact(
    graph: InterferenceGraph, node_limit: int = 2_000_000
) -> CoalescingResult:
    """Optimal aggressive coalescing by branch-and-bound.

    Maximizes the total coalesced weight.  Branches on each affinity
    (coalesce / give up) in decreasing-weight order; prunes when the
    already-given-up weight cannot beat the best solution found.
    Exponential in the number of affinities — use on reduction-sized
    instances only.  ``node_limit`` guards against runaway instances
    (raises ``RuntimeError`` when exceeded).
    """
    affinities = affinities_by_weight(graph)
    total = sum(w for _, _, w in affinities)
    best_given_up = [float("inf")]
    best_choice: List[Optional[List[bool]]] = [None]
    nodes = [0]

    choice: List[bool] = []

    def recurse(i: int, coalescing: Coalescing, given_up: float) -> None:
        nodes[0] += 1
        if nodes[0] > node_limit:
            raise RuntimeError("aggressive_coalesce_exact: node limit hit")
        if given_up >= best_given_up[0]:
            return
        if i == len(affinities):
            best_given_up[0] = given_up
            best_choice[0] = list(choice)
            return
        u, v, w = affinities[i]
        if coalescing.same_class(u, v):
            choice.append(True)
            recurse(i + 1, coalescing, given_up)
            choice.pop()
            return
        if coalescing.can_union(u, v):
            # try coalescing first (no cost)
            snapshot = _snapshot(coalescing)
            coalescing.union(u, v)
            choice.append(True)
            recurse(i + 1, coalescing, given_up)
            choice.pop()
            _restore(coalescing, snapshot)
        choice.append(False)
        recurse(i + 1, coalescing, given_up + w)
        choice.pop()

    recurse(0, Coalescing(graph), 0.0)

    # replay the best choice to build the result; affinities that ended
    # up in the same class transitively count as coalesced even if the
    # search marked them "given up" (their accounted cost was an upper
    # bound, matched exactly on the canonical path to this partition)
    coalescing = Coalescing(graph)
    assert best_choice[0] is not None
    for (u, v, _), take in zip(affinities, best_choice[0]):
        if take:
            coalescing.union(u, v)
    coalesced = [
        (u, v, w) for u, v, w in affinities if coalescing.same_class(u, v)
    ]
    given_up = [
        (u, v, w) for u, v, w in affinities if not coalescing.same_class(u, v)
    ]
    return CoalescingResult(
        graph=graph,
        coalescing=coalescing,
        strategy="aggressive-exact",
        coalesced=coalesced,
        given_up=given_up,
    )


def _snapshot(c: Coalescing):
    return (
        dict(c._parent),
        dict(c._rank),
        {k: set(v) for k, v in c._members.items()},
    )


def _restore(c: Coalescing, snap) -> None:
    parent, rank, members = snap
    c._parent = dict(parent)
    c._rank = dict(rank)
    c._members = {k: set(v) for k, v in members.items()}
