"""Node merging to *enhance* colourability (Vegdahl / Yang et al.).

Section 1 of the paper: "One can also merge vertices even if they are
not related to a move because this can sometimes make a non k-colorable
graph k-colorable [35, 34]."  Merging two non-adjacent vertices with
many common neighbours collapses their edges, lowering degrees in the
greedy elimination — two variables sharing a register is never wrong
for correctness, and sometimes it is exactly what unlocks the colouring.

The canonical example is the greedy-elimination-stuck even cycle: C4 at
k = 2 is 2-colorable but every vertex has degree 2; merging the two
antipodal vertices leaves a path.

:func:`merge_to_make_greedy_colorable` — repeatedly merge the
non-adjacent pair with the most common neighbours inside the stuck
witness subgraph until the graph becomes greedy-k-colorable (or no
merge can help).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph, Vertex
from ..graphs.greedy import dense_subgraph_witness, is_greedy_k_colorable
from ..graphs.interference import Coalescing, InterferenceGraph


def merge_to_make_greedy_colorable(
    graph: InterferenceGraph,
    k: int,
    max_merges: Optional[int] = None,
) -> Optional[Coalescing]:
    """Search for vertex merges that make the graph greedy-k-colorable.

    Returns the coalescing (possibly the identity, if the graph already
    is), or None when the heuristic gets stuck: no non-adjacent pair
    inside the witness subgraph reduces its edge count enough.

    The pair picked each round maximizes the number of common
    neighbours within the witness (each common neighbour loses one
    degree), breaking ties towards low combined degree.
    """
    limit = max_merges if max_merges is not None else len(graph)
    coalescing = Coalescing(graph)
    work = graph.copy()
    rep_name: Dict[Vertex, Vertex] = {v: v for v in graph.vertices}
    owner: Dict[Vertex, Vertex] = {v: v for v in graph.vertices}

    for _ in range(limit):
        witness = dense_subgraph_witness(work, k)
        if witness is None:
            return coalescing
        best: Optional[Tuple[int, int, Vertex, Vertex]] = None
        for u, v in combinations(sorted(witness, key=str), 2):
            if work.has_edge(u, v):
                continue
            common = len(work.neighbors_view(u) & work.neighbors_view(v))
            if common == 0:
                continue
            score = (
                -common,
                work.degree(u) + work.degree(v),
            )
            if best is None or score < (best[0], best[1]):
                best = (score[0], score[1], u, v)
        if best is None:
            return None
        _, _, u, v = best
        coalescing.union(owner[u], owner[v])
        merged = work.merge_in_place(u, v)
        rep = coalescing.find(owner[u])
        rep_name[rep] = merged
        owner[merged] = owner[u]
    if is_greedy_k_colorable(work, k):
        return coalescing
    return None


def merging_helps(graph: Graph, k: int) -> bool:
    """True iff the graph is not greedy-k-colorable but some sequence of
    merges found by the heuristic makes it so."""
    if is_greedy_k_colorable(graph, k):
        return False
    ig = InterferenceGraph()
    for v in graph.vertices:
        ig.add_vertex(v)
    for u, v in graph.edges():
        ig.add_edge(u, v)
    return merge_to_make_greedy_colorable(ig, k) is not None
