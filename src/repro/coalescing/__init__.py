"""Register-coalescing strategies — the paper's primary subject.

Four problem variants (Section 1), each with the heuristics used in
practice and an exact baseline for small instances:

=====================  ==============================================
aggressive             :func:`aggressive_coalesce`,
                       :func:`aggressive_coalesce_exact`  (Theorem 2)
conservative           :func:`conservative_coalesce` with Briggs /
                       George / brute-force tests,
                       :func:`optimal_conservative_coalescing`
                       (Theorem 3)
incremental            :func:`chordal_incremental_coalescible`
                       (polynomial, Theorem 5),
                       :func:`incremental_coalescible_exact`
                       (Theorem 4)
optimistic             :func:`optimistic_coalesce`,
                       :func:`decoalesce_minimum`  (Theorem 6)
=====================  ==============================================
"""

from .base import CoalescingResult, affinities_by_weight, empty_coalescing
from .aggressive import aggressive_coalesce, aggressive_coalesce_exact
from .conservative import (
    TESTS,
    briggs_george_test,
    briggs_test,
    brute_force_test,
    conservative_coalesce,
    george_extended_test,
    george_extended_test_both,
    george_test,
    george_test_both,
)
from .incremental import (
    IntervalWitness,
    chordal_incremental_coalescible,
    chordal_incremental_coloring,
    incremental_coalescible_exact,
)
from .optimistic import decoalesce_minimum, optimistic_coalesce
from .exact import optimal_conservative_coalescing
from .chordal_strategy import chordal_incremental_coalesce
from .biased import biased_coloring_result, biased_greedy_coloring
from .node_merging import merge_to_make_greedy_colorable, merging_helps

__all__ = [
    "CoalescingResult",
    "affinities_by_weight",
    "empty_coalescing",
    "aggressive_coalesce",
    "aggressive_coalesce_exact",
    "TESTS",
    "briggs_test",
    "george_test",
    "george_test_both",
    "briggs_george_test",
    "brute_force_test",
    "conservative_coalesce",
    "IntervalWitness",
    "chordal_incremental_coalescible",
    "chordal_incremental_coloring",
    "incremental_coalescible_exact",
    "optimistic_coalesce",
    "decoalesce_minimum",
    "optimal_conservative_coalescing",
    "george_extended_test",
    "george_extended_test_both",
    "chordal_incremental_coalesce",
    "biased_coloring_result",
    "biased_greedy_coloring",
    "merge_to_make_greedy_colorable",
    "merging_helps",
]
