"""A chordal-aware incremental conservative coalescing strategy.

Section 4 of the paper, after Theorem 5: *"we could design an
incremental conservative coalescing strategy for chordal graphs.  If G
is chordal and (x, y) is an affinity that we absolutely want to
coalesce because the corresponding move is expensive, we can decide if
this is possible.  [...] if we coalesce the affinity, the graph may not
be chordal anymore.  However, we can still make it chordal by an
appropriate merge of vertices (as we do in the proof of the theorem)."*

This module implements exactly that strategy:

1. process affinities by decreasing weight;
2. for each affinity (x, y), run the polynomial Theorem 5 test on the
   *current* (chordal) graph with the original palette k;
3. if mergeable, merge x, y **and the witness chain** — the proof's
   construction — which keeps the graph chordal with clique number ≤ k,
   so the invariant holds for the next affinity.  (Chain members are
   pairwise non-adjacent: if two chain subtrees met off the path, the
   tree path from the meeting node to P would land in both projections,
   contradicting interval disjointness.)

The paper also warns: *"these artificial merges may prevent to coalesce
more important affinities afterwards"* — which is why affinities are
taken in weight order and why the strategy is measured against the
others in ``benchmarks/bench_ablation_strategies.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graphs.chordal import clique_number_chordal, is_chordal
from ..graphs.graph import Vertex
from ..graphs.interference import Coalescing, InterferenceGraph
from ..obs import NULL_TRACER, Tracer
from .base import CoalescingResult, affinities_by_weight
from .incremental import chordal_incremental_coalescible


def chordal_incremental_coalesce(
    graph: InterferenceGraph, k: int, tracer: Tracer = NULL_TRACER
) -> CoalescingResult:
    """Run the chordal incremental strategy on a chordal k-colorable
    interference graph.

    Raises ``ValueError`` if the input graph is not chordal or its
    clique number exceeds ``k``.  The result's quotient is chordal with
    ω ≤ k — hence greedy-k-colorable (Property 1).
    """
    structural = graph.structural_graph()
    if not is_chordal(structural):
        raise ValueError("input graph must be chordal")
    if len(structural) and clique_number_chordal(structural) > k:
        raise ValueError("input graph has a clique larger than k")

    work = graph.copy()
    coalescing = Coalescing(graph)
    # each vertex of `work` stands for one coalescing class; `owner`
    # maps it to a representative original vertex of that class
    owner: Dict[Vertex, Vertex] = {v: v for v in graph.vertices}
    rep_name: Dict[Vertex, Vertex] = {v: v for v in graph.vertices}

    tracer.count("affinities.total", graph.num_affinities())
    with tracer.span("chordal-incremental"):
        for u, v, w in affinities_by_weight(graph):
            wu = rep_name[coalescing.find(u)]
            wv = rep_name[coalescing.find(v)]
            if wu == wv:
                continue
            tracer.count("queries.interference")
            if work.has_edge(wu, wv):
                tracer.count("moves.constrained")
                continue
            tracer.count("moves.attempted")
            witness = chordal_incremental_coalescible(
                work, wu, wv, k, tracer=tracer
            )
            if not witness.mergeable:
                tracer.count("moves.rejected")
                continue
            tracer.count("moves.coalesced")
            tracer.count("chordal.chain_merges", len(witness.chain))
            # merge x, y and the witness chain so the graph stays chordal
            # with unchanged clique number (the proof's construction)
            group = [wu, *witness.chain, wv]
            merged = group[0]
            for member in group[1:]:
                coalescing.union(owner[group[0]], owner[member])
                merged = work.merge_in_place(merged, member)
                owner.pop(member, None)
            rep = coalescing.find(u)
            rep_name[rep] = merged
            owner[merged] = owner[group[0]] if group[0] in owner else u

    # final ledger from the partition itself: witness-chain merges can
    # union the endpoints of affinities decided earlier
    coalesced = [
        (u, v, w)
        for u, v, w in graph.affinities()
        if coalescing.same_class(u, v)
    ]
    given_up = [
        (u, v, w)
        for u, v, w in graph.affinities()
        if not coalescing.same_class(u, v)
    ]
    return CoalescingResult(
        graph=graph,
        coalescing=coalescing,
        strategy="chordal-incremental",
        coalesced=coalesced,
        given_up=given_up,
    )
