"""Optimistic coalescing (Section 5, after Park and Moon).

The "dual" of conservative coalescing: first coalesce *aggressively*
(ignoring colourability), then **de-coalesce** — give up as few moves as
possible until the graph is greedy-k-colorable again.  Deciding the
minimum number of moves to give up is NP-complete (Theorem 6, by
reduction from vertex cover), so the library provides:

* :func:`optimistic_coalesce` — the practical heuristic: aggressive
  phase, then repeatedly dissolve the cheapest merged class that blocks
  the greedy elimination (the class is *split back into primitive
  vertices*, as Park–Moon do), with a final conservative re-coalescing
  pass over the dissolved affinities;
* :func:`decoalesce_minimum` — exact minimum de-coalescing by iterative
  deepening over the set of given-up affinities, for reduction-sized
  instances.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..analysis.debug import maybe_check_coalescing_result
from ..graphs.graph import Vertex
from ..graphs.greedy import dense_subgraph_witness, is_greedy_k_colorable
from ..graphs.interference import Coalescing, InterferenceGraph
from ..obs import NULL_TRACER, Tracer
from .aggressive import aggressive_coalesce
from .base import CoalescingResult, affinities_by_weight
from .conservative import brute_force_test


def optimistic_coalesce(
    graph: InterferenceGraph,
    k: int,
    recoalesce: bool = True,
    tracer: Tracer = NULL_TRACER,
) -> CoalescingResult:
    """Aggressive coalescing followed by heuristic de-coalescing.

    De-coalescing loop: while the quotient graph is not
    greedy-k-colorable, take the witness subgraph in which every vertex
    has degree ≥ k, pick among its merged classes the one with the
    smallest internal affinity weight, and dissolve it back into
    primitive vertices.  Finally (``recoalesce``), retry each dissolved
    affinity with the brute-force conservative test — Park and Moon's
    refinement that recovers moves the coarse dissolution gave up
    needlessly.
    """
    aggressive = aggressive_coalesce(graph, tracer=tracer)
    classes: List[Set[Vertex]] = [set(c) for c in aggressive.coalescing.classes()]
    dissolved_pairs: List[Tuple[Vertex, Vertex]] = []

    def build(coal_classes: Sequence[Set[Vertex]]) -> Coalescing:
        c = Coalescing(graph)
        for group in coal_classes:
            members = sorted(group, key=str)
            for other in members[1:]:
                c.union(members[0], other)
        return c

    with tracer.span("optimistic/decoalesce"):
        while True:
            tracer.count("optimistic.witness_checks")
            coalescing = build(classes)
            quotient = coalescing.coalesced_graph()
            witness = dense_subgraph_witness(quotient, k)
            if witness is None:
                break
            rep_to_class: Dict[Vertex, Set[Vertex]] = {}
            for group in classes:
                rep = coalescing.find(next(iter(group)))
                rep_to_class[rep] = group
            blockers = [
                rep_to_class[r]
                for r in witness
                if r in rep_to_class and len(rep_to_class[r]) > 1
            ]
            if not blockers:
                # every witness vertex is primitive: the original graph is
                # itself not greedy-k-colorable
                raise ValueError(
                    "input graph is not greedy-k-colorable; optimistic "
                    "coalescing cannot fix spills"
                )
            cheapest = min(blockers, key=lambda c: _internal_weight(graph, c))
            classes.remove(cheapest)
            for v in cheapest:
                classes.append({v})
            before = len(dissolved_pairs)
            dissolved_pairs.extend(
                (u, v)
                for u, v, _ in graph.affinities()
                if u in cheapest and v in cheapest
            )
            tracer.count("optimistic.dissolved_classes")
            tracer.count(
                "optimistic.dissolved_pairs", len(dissolved_pairs) - before
            )
            tracer.event(
                "optimistic.dissolve",
                size=len(cheapest),
                weight=_internal_weight(graph, cheapest),
            )

    coalescing = build(classes)
    if recoalesce and dissolved_pairs:
        with tracer.span("optimistic/recoalesce"):
            work = coalescing.coalesced_graph()
            rep_name = {v: coalescing.find(v) for v in graph.vertices}
            for u, v, _ in affinities_by_weight(graph):
                if (u, v) not in dissolved_pairs and (v, u) not in dissolved_pairs:
                    continue
                wu, wv = rep_name[coalescing.find(u)], rep_name[coalescing.find(v)]
                if wu == wv:
                    continue
                tracer.count("queries.interference")
                if work.has_edge(wu, wv):
                    continue
                tracer.count("optimistic.recoalesce_attempted")
                if brute_force_test(work, wu, wv, k):
                    work.merge_in_place(wu, wv)
                    coalescing.union(u, v)
                    rep_name[coalescing.find(u)] = wu
                    tracer.count("optimistic.recoalesced")

    coalesced = [
        (u, v, w)
        for u, v, w in graph.affinities()
        if coalescing.same_class(u, v)
    ]
    given_up = [
        (u, v, w)
        for u, v, w in graph.affinities()
        if not coalescing.same_class(u, v)
    ]
    result = CoalescingResult(
        graph=graph,
        coalescing=coalescing,
        strategy="optimistic",
        coalesced=coalesced,
        given_up=given_up,
    )
    maybe_check_coalescing_result(result, k=k)
    return result


def _internal_weight(graph: InterferenceGraph, group: Set[Vertex]) -> float:
    return sum(
        w for u, v, w in graph.affinities() if u in group and v in group
    )


def decoalesce_minimum(
    graph: InterferenceGraph,
    k: int,
    full: Optional[Coalescing] = None,
    max_give_up: Optional[int] = None,
) -> Optional[List[Tuple[Vertex, Vertex]]]:
    """Exact minimum de-coalescing (the Theorem 6 optimization).

    Given a coalescing ``full`` in which every affinity is coalesced
    (default: build it, failing if the affinities cannot all be
    coalesced), find a minimum-cardinality set of affinities to give up
    so that the de-coalesced quotient is greedy-k-colorable.

    De-coalescing is monotone — splitting a class of a
    greedy-k-colorable quotient distributes the merged vertex's edges
    over non-adjacent parts, which keeps the elimination going — so
    iterative deepening over the give-up set size is exact: the first
    size that succeeds equals the optimum residual move count.  Exponential: reduction-sized instances only.  Returns the
    affinity pairs to give up, or None if even full de-coalescing (the
    original graph) is not greedy-k-colorable or the deepening limit
    ``max_give_up`` is exhausted.
    """
    affinities = [(u, v) for u, v, _ in affinities_by_weight(graph)]
    if full is None:
        full = Coalescing(graph)
        for u, v in affinities:
            if not full.can_union(u, v):
                raise ValueError(
                    "not all affinities can be coalesced aggressively"
                )
            full.union(u, v)
    if not is_greedy_k_colorable(graph, k):
        return None
    limit = len(affinities) if max_give_up is None else max_give_up

    def quotient_ok(give_up: Set[int]) -> bool:
        c = Coalescing(graph)
        for i, (u, v) in enumerate(affinities):
            if i not in give_up and c.can_union(u, v):
                c.union(u, v)
        return is_greedy_k_colorable(c.coalesced_graph(), k)

    for size in range(0, limit + 1):
        for subset in combinations(range(len(affinities)), size):
            if quotient_ok(set(subset)):
                return [affinities[i] for i in subset]
    return None
