"""Conservative coalescing (Section 4).

Coalesce as many moves as possible while *keeping the graph colourable*.
The decision problem is NP-complete even for k = 3 (Theorem 3), so
practice uses incremental local tests applied one affinity at a time:

* **Briggs**: merge u and v if the merged vertex has fewer than k
  neighbours of degree ≥ k;
* **George**: merge u and v if every neighbour of u of degree ≥ k is
  already a neighbour of v (asymmetric — the paper notes it may be
  applied in both directions when spilling is done beforehand);
* **brute force**: merge, then re-check greedy-k-colorability of the
  whole graph in linear time (the paper's suggestion at the end of
  Section 4) — strictly more powerful than both local rules, as the
  Figure 3 permutation gadget demonstrates.

All tests preserve greedy-k-colorability, hence k-colorability.
:func:`conservative_coalesce` iterates a worklist to a fixed point:
coalescing one move can enable another (and with the brute-force test,
even a previously-refused one).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from ..graphs.graph import Vertex
from ..graphs.interference import Coalescing, InterferenceGraph
from ..graphs.greedy import is_greedy_k_colorable
from ..analysis.debug import maybe_check_coalescing_result
from ..obs import NULL_TRACER, Tracer
from .base import CoalescingResult, affinities_by_weight


def briggs_test(graph: InterferenceGraph, u: Vertex, v: Vertex, k: int) -> bool:
    """Briggs' conservative test on the *current* graph.

    The merged vertex's neighbourhood is N(u) ∪ N(v) \\ {u, v}; a common
    neighbour's degree drops by one in the merged graph.  Safe when
    fewer than k of those neighbours have (merged-graph) degree ≥ k.
    """
    if graph.has_edge(u, v):
        return False
    nu, nv = graph.neighbors_view(u), graph.neighbors_view(v)
    significant = 0
    for w in (nu | nv) - {u, v}:
        degree = graph.degree(w)
        if w in nu and w in nv:
            degree -= 1  # its two edges to u and v become one
        if degree >= k:
            significant += 1
            if significant >= k:
                return False
    return True


def george_test(graph: InterferenceGraph, u: Vertex, v: Vertex, k: int) -> bool:
    """George's test: merge ``u`` into ``v``.

    Safe when every neighbour of ``u`` either has degree < k or is
    already a neighbour of ``v``.  Asymmetric: callers may also try the
    swapped direction.
    """
    if graph.has_edge(u, v):
        return False
    nv = graph.neighbors_view(v)
    return all(
        graph.degree(t) < k or t in nv
        for t in graph.neighbors_view(u)
        if t != v
    )


def george_test_both(graph: InterferenceGraph, u: Vertex, v: Vertex, k: int) -> bool:
    """George's test tried in both directions (the paper's suggestion
    when spilling has been done first, so any two vertices qualify)."""
    return george_test(graph, u, v, k) or george_test(graph, v, u, k)


def george_extended_test(graph: InterferenceGraph, u: Vertex, v: Vertex, k: int) -> bool:
    """The extension of George's rule mentioned in Section 4.

    A neighbour ``t`` of ``u`` need not be a neighbour of ``v`` when
    ``t`` itself has at most (k − 1) neighbours of degree ≥ k — such a
    ``t`` is always removable by the greedy scheme once its low-degree
    neighbours are gone (the Briggs argument applied to ``t``), so it
    cannot block the merged vertex.  Costlier to evaluate (degree
    inspection of the neighbours' neighbours), as the paper notes.
    """
    if graph.has_edge(u, v):
        return False
    nv = graph.neighbors_view(v)

    def removable(t: Vertex) -> bool:
        significant = 0
        for s in graph.neighbors_view(t):
            if graph.degree(s) >= k:
                significant += 1
                if significant >= k:
                    return False
        return True

    return all(
        t in nv or graph.degree(t) < k or removable(t)
        for t in graph.neighbors_view(u)
        if t != v
    )


def george_extended_test_both(
    graph: InterferenceGraph, u: Vertex, v: Vertex, k: int
) -> bool:
    """The extended George test in both directions."""
    return george_extended_test(graph, u, v, k) or george_extended_test(
        graph, v, u, k
    )


def briggs_george_test(graph: InterferenceGraph, u: Vertex, v: Vertex, k: int) -> bool:
    """The combined rule used by iterated register coalescing."""
    return briggs_test(graph, u, v, k) or george_test_both(graph, u, v, k)


def brute_force_test(graph: InterferenceGraph, u: Vertex, v: Vertex, k: int) -> bool:
    """Merge ``u`` and ``v`` on a copy and re-check
    greedy-k-colorability of the whole graph (linear time)."""
    if graph.has_edge(u, v):
        return False
    merged = graph.merged(u, v)
    return is_greedy_k_colorable(merged, k)


ConservativeTest = Callable[[InterferenceGraph, Vertex, Vertex, int], bool]

TESTS: dict = {
    "briggs": briggs_test,
    "george": george_test_both,
    "george_extended": george_extended_test_both,
    "briggs_george": briggs_george_test,
    "brute": brute_force_test,
}


def conservative_coalesce(
    graph: InterferenceGraph,
    k: int,
    test: str = "briggs_george",
    check_input: bool = True,
    tracer: Tracer = NULL_TRACER,
) -> CoalescingResult:
    """Iterated conservative coalescing with the chosen test.

    Processes affinities by decreasing weight; after any successful
    merge, previously-refused affinities are retried (a merge can lower
    degrees through common neighbours, or — with the brute-force test —
    change the global answer).  Stops at a fixed point.

    If ``check_input`` and the input graph is not greedy-k-colorable,
    raises ``ValueError`` — conservative coalescing is only meaningful
    on a colourable graph (the paper's setting: after spilling).

    ``tracer`` records rounds, merge attempts/accepts/rejections, and
    interference queries (see docs/OBSERVABILITY.md).
    """
    try:
        test_fn = TESTS[test]
    except KeyError:
        raise ValueError(f"unknown test {test!r}; choose from {sorted(TESTS)}")
    if check_input and not is_greedy_k_colorable(graph, k):
        raise ValueError("input graph is not greedy-k-colorable")

    work = graph.copy()
    coalescing = Coalescing(graph)
    # map each union-find representative to its vertex name in `work`
    # (stale entries for superseded representatives are harmless)
    rep_name = {v: v for v in graph.vertices}
    tracer.count("affinities.total", graph.num_affinities())
    with tracer.span(f"conservative-{test}"):
        progress = True
        while progress:
            progress = False
            tracer.count("conservative.rounds")
            for u, v, w in affinities_by_weight(graph):
                wu = rep_name[coalescing.find(u)]
                wv = rep_name[coalescing.find(v)]
                if wu == wv:
                    continue
                tracer.count("queries.interference")
                if work.has_edge(wu, wv):
                    tracer.count("moves.constrained")
                    continue
                tracer.count("moves.attempted")
                if test_fn(work, wu, wv, k):
                    work.merge_in_place(wu, wv)
                    coalescing.union(u, v)
                    rep_name[coalescing.find(u)] = wu
                    progress = True
                    tracer.count("moves.coalesced")
                else:
                    tracer.count("moves.rejected")
    # final ledger from the partition itself, so affinities coalesced
    # transitively (endpoints unioned through other moves) are counted
    coalesced = [
        (u, v, w)
        for u, v, w in graph.affinities()
        if coalescing.same_class(u, v)
    ]
    given_up = [
        (u, v, w)
        for u, v, w in graph.affinities()
        if not coalescing.same_class(u, v)
    ]
    result = CoalescingResult(
        graph=graph,
        coalescing=coalescing,
        strategy=f"conservative-{test}",
        coalesced=coalesced,
        given_up=given_up,
    )
    maybe_check_coalescing_result(result, k=k)
    return result
