"""Conservative coalescing (Section 4).

Coalesce as many moves as possible while *keeping the graph colourable*.
The decision problem is NP-complete even for k = 3 (Theorem 3), so
practice uses incremental local tests applied one affinity at a time:

* **Briggs**: merge u and v if the merged vertex has fewer than k
  neighbours of degree ≥ k;
* **George**: merge u and v if every neighbour of u of degree ≥ k is
  already a neighbour of v (asymmetric — the paper notes it may be
  applied in both directions when spilling is done beforehand);
* **brute force**: merge, then re-check greedy-k-colorability of the
  whole graph in linear time (the paper's suggestion at the end of
  Section 4) — strictly more powerful than both local rules, as the
  Figure 3 permutation gadget demonstrates.

All tests preserve greedy-k-colorability, hence k-colorability.
:func:`conservative_coalesce` iterates a worklist to a fixed point:
coalescing one move can enable another (and with the brute-force test,
even a previously-refused one).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..graphs import dense as _dense
from ..graphs.dense import DenseGraph
from ..graphs.graph import Vertex
from ..graphs.interference import Coalescing, InterferenceGraph
from ..graphs.greedy import is_greedy_k_colorable
from ..analysis.debug import maybe_check_coalescing_result
from ..obs import EDGES_SCANNED, NULL_TRACER, Tracer
from .base import CoalescingResult, affinities_by_weight


def briggs_test(
    graph: InterferenceGraph,
    u: Vertex,
    v: Vertex,
    k: int,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """Briggs' conservative test on the *current* graph.

    The merged vertex's neighbourhood is N(u) ∪ N(v) \\ {u, v}; a common
    neighbour's degree drops by one in the merged graph.  Safe when
    fewer than k of those neighbours have (merged-graph) degree ≥ k.
    """
    if graph.has_edge(u, v):
        return False
    nu, nv = graph.neighbors_view(u), graph.neighbors_view(v)
    if tracer.enabled:
        # cost of building the union, independent of early exits
        tracer.count(EDGES_SCANNED, len(nu) + len(nv))
    significant = 0
    for w in (nu | nv) - {u, v}:
        degree = graph.degree(w)
        if w in nu and w in nv:
            degree -= 1  # its two edges to u and v become one
        if degree >= k:
            significant += 1
            if significant >= k:
                return False
    return True


def george_test(
    graph: InterferenceGraph,
    u: Vertex,
    v: Vertex,
    k: int,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """George's test: merge ``u`` into ``v``.

    Safe when every neighbour of ``u`` either has degree < k or is
    already a neighbour of ``v``.  Asymmetric: callers may also try the
    swapped direction.
    """
    if graph.has_edge(u, v):
        return False
    nv = graph.neighbors_view(v)
    if tracer.enabled:
        tracer.count(EDGES_SCANNED, graph.degree(u))
    return all(
        graph.degree(t) < k or t in nv
        for t in graph.neighbors_view(u)
        if t != v
    )


def george_test_both(
    graph: InterferenceGraph,
    u: Vertex,
    v: Vertex,
    k: int,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """George's test tried in both directions (the paper's suggestion
    when spilling has been done first, so any two vertices qualify)."""
    return george_test(graph, u, v, k, tracer=tracer) or george_test(
        graph, v, u, k, tracer=tracer
    )


def george_extended_test(
    graph: InterferenceGraph,
    u: Vertex,
    v: Vertex,
    k: int,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """The extension of George's rule mentioned in Section 4.

    A neighbour ``t`` of ``u`` need not be a neighbour of ``v`` when
    ``t`` itself has at most (k − 1) neighbours of degree ≥ k — such a
    ``t`` is always removable by the greedy scheme once its low-degree
    neighbours are gone (the Briggs argument applied to ``t``), so it
    cannot block the merged vertex.  Costlier to evaluate (degree
    inspection of the neighbours' neighbours), as the paper notes.
    """
    if graph.has_edge(u, v):
        return False
    nv = graph.neighbors_view(v)
    # materialize the potential blockers first: the high-degree
    # neighbours of u unknown to v.  The blocker *set* is deterministic
    # (unlike the set-iteration order), so counting its scan costs
    # upfront keeps the work counters exact across runs.
    blockers = [
        t
        for t in graph.neighbors_view(u)
        if t != v and t not in nv and graph.degree(t) >= k
    ]
    if tracer.enabled:
        tracer.count(EDGES_SCANNED, graph.degree(u))
        for t in blockers:
            tracer.count(EDGES_SCANNED, graph.degree(t))

    def removable(t: Vertex) -> bool:
        significant = 0
        for s in graph.neighbors_view(t):
            if graph.degree(s) >= k:
                significant += 1
                if significant >= k:
                    return False
        return True

    return all(removable(t) for t in blockers)


def george_extended_test_both(
    graph: InterferenceGraph,
    u: Vertex,
    v: Vertex,
    k: int,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """The extended George test in both directions."""
    return george_extended_test(
        graph, u, v, k, tracer=tracer
    ) or george_extended_test(graph, v, u, k, tracer=tracer)


def briggs_george_test(
    graph: InterferenceGraph,
    u: Vertex,
    v: Vertex,
    k: int,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """The combined rule used by iterated register coalescing."""
    return briggs_test(graph, u, v, k, tracer=tracer) or george_test_both(
        graph, u, v, k, tracer=tracer
    )


def brute_force_test(
    graph: InterferenceGraph,
    u: Vertex,
    v: Vertex,
    k: int,
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """Merge ``u`` and ``v`` on a copy and re-check
    greedy-k-colorability of the whole graph (linear time)."""
    if graph.has_edge(u, v):
        return False
    if tracer.enabled:
        # cost of cloning the adjacency structure for the trial merge
        tracer.count(EDGES_SCANNED, 2 * graph.num_edges())
    merged = graph.merged(u, v)
    return is_greedy_k_colorable(merged, k, tracer=tracer)


ConservativeTest = Callable[..., bool]

TESTS: dict = {
    "briggs": briggs_test,
    "george": george_test_both,
    "george_extended": george_extended_test_both,
    "briggs_george": briggs_george_test,
    "brute": brute_force_test,
}


def _coalesce_rounds_dict(
    graph: InterferenceGraph,
    k: int,
    test_fn: ConservativeTest,
    coalescing: Coalescing,
    tracer: Tracer,
) -> None:
    """The fixed-point worklist on the dict-of-set work graph."""
    work = graph.copy()
    # map each union-find representative to its vertex name in `work`
    # (stale entries for superseded representatives are harmless)
    rep_name = {v: v for v in graph.vertices}
    progress = True
    while progress:
        progress = False
        tracer.count("conservative.rounds")
        for u, v, w in affinities_by_weight(graph):
            wu = rep_name[coalescing.find(u)]
            wv = rep_name[coalescing.find(v)]
            if wu == wv:
                continue
            tracer.count("queries.interference")
            if work.has_edge(wu, wv):
                tracer.count("moves.constrained")
                continue
            tracer.count("moves.attempted")
            if test_fn(work, wu, wv, k, tracer=tracer):
                work.merge_in_place(wu, wv)
                coalescing.union(u, v)
                rep_name[coalescing.find(u)] = wu
                progress = True
                tracer.count("moves.coalesced")
            else:
                tracer.count("moves.rejected")


def _coalesce_rounds_dense(
    graph: InterferenceGraph,
    k: int,
    test_fn: ConservativeTest,
    coalescing: Coalescing,
    tracer: Tracer,
) -> None:
    """The same fixed point on the dense bitset work graph.

    Identical iteration order, merge directions, and verdicts as the
    dict loop (each dense test is verdict-equal to its dict twin), so
    the ``moves.*`` / ``queries.*`` counters and the resulting partition
    match exactly; only the kernel work counters shrink.  The degree-≥-k
    mask ``high`` is maintained incrementally from the common-neighbour
    mask that :meth:`DenseGraph.merge_in_place` returns — the only
    vertices whose degree changed.
    """
    dense = DenseGraph.from_graph(graph)
    deg = dense.deg
    # map each union-find representative to its slot in `dense`
    rep_idx = {v: dense.index[v] for v in graph.vertices}
    high = dense.high_degree_mask(k)
    progress = True
    while progress:
        progress = False
        tracer.count("conservative.rounds")
        for u, v, w in affinities_by_weight(graph):
            i = rep_idx[coalescing.find(u)]
            j = rep_idx[coalescing.find(v)]
            if i == j:
                continue
            tracer.count("queries.interference")
            if dense.has_edge(i, j):
                tracer.count("moves.constrained")
                continue
            tracer.count("moves.attempted")
            if test_fn(dense, i, j, k, high=high, tracer=tracer):
                common = dense.merge_in_place(i, j)
                # common neighbours lost one degree; i changed; j died
                drop = common & high
                while drop:
                    low = drop & -drop
                    if deg[low.bit_length() - 1] < k:
                        high &= ~low
                    drop ^= low
                high &= ~(1 << j)
                if deg[i] >= k:
                    high |= 1 << i
                else:
                    high &= ~(1 << i)
                coalescing.union(u, v)
                rep_idx[coalescing.find(u)] = i
                progress = True
                tracer.count("moves.coalesced")
            else:
                tracer.count("moves.rejected")


def conservative_coalesce(
    graph: InterferenceGraph,
    k: int,
    test: str = "briggs_george",
    check_input: bool = True,
    tracer: Tracer = NULL_TRACER,
    backend: str = "dense",
) -> CoalescingResult:
    """Iterated conservative coalescing with the chosen test.

    Processes affinities by decreasing weight; after any successful
    merge, previously-refused affinities are retried (a merge can lower
    degrees through common neighbours, or — with the brute-force test —
    change the global answer).  Stops at a fixed point.

    If ``check_input`` and the input graph is not greedy-k-colorable,
    raises ``ValueError`` — conservative coalescing is only meaningful
    on a colourable graph (the paper's setting: after spilling).

    ``backend`` selects the work-graph representation: ``"dense"`` (the
    default) runs the rounds on :class:`~repro.graphs.dense.DenseGraph`
    bitset kernels, ``"dict"`` on the dict-of-set reference.  Both
    produce the same partition, ledger, and ``moves.*`` counters (the
    tests are verdict-identical); they differ only in kernel work — see
    docs/PERFORMANCE.md.

    ``tracer`` records rounds, merge attempts/accepts/rejections, and
    interference queries (see docs/OBSERVABILITY.md).
    """
    if backend == "dense":
        tests: Dict[str, ConservativeTest] = _dense.DENSE_TESTS
    elif backend == "dict":
        tests = TESTS
    else:
        raise ValueError(f"unknown backend {backend!r}; choose 'dense' or 'dict'")
    try:
        test_fn = tests[test]
    except KeyError:
        raise ValueError(f"unknown test {test!r}; choose from {sorted(tests)}")
    if check_input and not is_greedy_k_colorable(graph, k):
        raise ValueError("input graph is not greedy-k-colorable")

    coalescing = Coalescing(graph)
    tracer.count("affinities.total", graph.num_affinities())
    with tracer.span(f"conservative-{test}"):
        if backend == "dense":
            _coalesce_rounds_dense(graph, k, test_fn, coalescing, tracer)
        else:
            _coalesce_rounds_dict(graph, k, test_fn, coalescing, tracer)
    # final ledger from the partition itself, so affinities coalesced
    # transitively (endpoints unioned through other moves) are counted
    coalesced = [
        (u, v, w)
        for u, v, w in graph.affinities()
        if coalescing.same_class(u, v)
    ]
    given_up = [
        (u, v, w)
        for u, v, w in graph.affinities()
        if not coalescing.same_class(u, v)
    ]
    result = CoalescingResult(
        graph=graph,
        coalescing=coalescing,
        strategy=f"conservative-{test}",
        coalesced=coalesced,
        given_up=given_up,
    )
    maybe_check_coalescing_result(result, k=k)
    return result
