"""Biased colouring (Section 1's "smarter coloring schemes favoring
more coalescing").

Instead of merging vertices, biased colouring keeps the graph intact
and steers the *select* phase: when a vertex is coloured, prefer a
colour already given to one of its affinity partners (weighted), so
moves vanish for free when the interference structure allows it.

Cheaper than any conservative test — it can never hurt colourability —
but weaker: it only sees partners already coloured, and no look-ahead.
The ablation bench compares it against the merging strategies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graphs.graph import Vertex
from ..graphs.greedy import greedy_elimination_order
from ..graphs.interference import Coalescing, InterferenceGraph
from ..obs import NULL_TRACER, Tracer
from .base import CoalescingResult


def biased_greedy_coloring(
    graph: InterferenceGraph, k: int, tracer: Tracer = NULL_TRACER
) -> Optional[Dict[Vertex, int]]:
    """A greedy k-colouring of an interference graph with
    affinity-biased colour selection, or None when the graph is not
    greedy-k-colorable.

    Vertices are coloured in reverse elimination order; each vertex
    takes the allowed colour with the highest total affinity weight to
    already-coloured partners, falling back to the smallest allowed
    colour.
    """
    with tracer.span("biased-coloring"):
        order, success = greedy_elimination_order(graph, k)
        if not success:
            return None
        partner_weights: Dict[Vertex, List[Tuple[Vertex, float]]] = {
            v: [] for v in graph.vertices
        }
        for u, v, w in graph.affinities():
            partner_weights[u].append((v, w))
            partner_weights[v].append((u, w))
        coloring: Dict[Vertex, int] = {}
        for v in reversed(order):
            forbidden = {
                coloring[u] for u in graph.neighbors_view(v) if u in coloring
            }
            preference: Dict[int, float] = {}
            for partner, w in partner_weights[v]:
                c = coloring.get(partner)
                if c is not None and c not in forbidden:
                    preference[c] = preference.get(c, 0.0) + w
            if preference:
                coloring[v] = max(sorted(preference), key=preference.__getitem__)
                tracer.count("biased.preferred")
                continue
            c = 0
            while c in forbidden:
                c += 1
            coloring[v] = c
            tracer.count("biased.fallback")
    return coloring


def biased_coloring_result(
    graph: InterferenceGraph, k: int, tracer: Tracer = NULL_TRACER
) -> CoalescingResult:
    """Express a biased colouring as a :class:`CoalescingResult`.

    Two affinity endpoints count as coalesced when the biased colouring
    gives them the same colour.  (The partition groups same-coloured
    affinity-connected vertices, which is a valid coalescing since they
    never interfere.)
    """
    coloring = biased_greedy_coloring(graph, k, tracer=tracer)
    if coloring is None:
        raise ValueError("input graph is not greedy-k-colorable")
    coalescing = Coalescing(graph)
    tracer.count("affinities.total", graph.num_affinities())
    for u, v, _ in graph.affinities():
        tracer.count("moves.attempted")
        if (
            coloring[u] == coloring[v]
            and not graph.has_edge(u, v)
            and coalescing.can_union(u, v)
        ):
            coalescing.union(u, v)
            tracer.count("moves.coalesced")
        else:
            tracer.count("moves.rejected")
    coalesced = [
        (u, v, w) for u, v, w in graph.affinities()
        if coalescing.same_class(u, v)
    ]
    given_up = [
        (u, v, w) for u, v, w in graph.affinities()
        if not coalescing.same_class(u, v)
    ]
    return CoalescingResult(
        graph=graph,
        coalescing=coalescing,
        strategy="biased-coloring",
        coalesced=coalesced,
        given_up=given_up,
    )
