"""CNF formulas and a DPLL solver.

Substrate for the Theorem 4 reduction (3SAT → 4SAT → incremental
conservative coalescing).  Literals are non-zero integers in the DIMACS
convention: ``+i`` is variable i, ``-i`` its negation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..budget import Budget

Literal = int
Clause = Tuple[Literal, ...]


@dataclass
class CNF:
    """A CNF formula over variables 1..num_vars."""

    num_vars: int
    clauses: List[Clause] = field(default_factory=list)

    def __post_init__(self) -> None:
        for clause in self.clauses:
            self._check_clause(clause)

    def _check_clause(self, clause: Clause) -> None:
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range")

    def add_clause(self, clause: Iterable[Literal]) -> None:
        """Append a clause."""
        clause = tuple(clause)
        self._check_clause(clause)
        self.clauses.append(clause)

    def is_satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """True iff the (total) assignment satisfies every clause."""
        for clause in self.clauses:
            if not any(
                assignment[abs(lit)] == (lit > 0) for lit in clause
            ):
                return False
        return True

    def clause_sizes(self) -> Set[int]:
        """The set of clause lengths present."""
        return {len(c) for c in self.clauses}


def solve_dpll(
    cnf: CNF, budget: Optional[Budget] = None
) -> Optional[Dict[int, bool]]:
    """A satisfying assignment by DPLL with unit propagation, or None.

    Plain but complete: unit propagation, pure-literal elimination at
    the root, most-frequent-variable branching.  An optional
    :class:`repro.budget.Budget` is checked at every branching node and
    raises :exc:`repro.budget.BudgetExceeded` when spent, so a hard
    formula cannot stall a whole experiment sweep.
    """
    assignment: Dict[int, bool] = {}

    def propagate(clauses: List[Clause]) -> Optional[List[Clause]]:
        """Apply the current assignment; return simplified clauses or
        None on conflict.  Extends the assignment with units."""
        changed = True
        while changed:
            changed = False
            new_clauses: List[Clause] = []
            for clause in clauses:
                satisfied = False
                remaining: List[Literal] = []
                for lit in clause:
                    var = abs(lit)
                    if var in assignment:
                        if assignment[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        remaining.append(lit)
                if satisfied:
                    continue
                if not remaining:
                    return None  # conflict
                if len(remaining) == 1:
                    lit = remaining[0]
                    assignment[abs(lit)] = lit > 0
                    changed = True
                else:
                    new_clauses.append(tuple(remaining))
            clauses = new_clauses
        return clauses

    def solve(clauses: List[Clause]) -> bool:
        if budget is not None:
            budget.check()
        clauses = propagate(clauses)  # type: ignore[assignment]
        if clauses is None:
            return False
        if not clauses:
            return True
        counts: Dict[int, int] = {}
        for clause in clauses:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        var = max(counts, key=lambda v: (counts[v], -v))
        for value in (True, False):
            saved = dict(assignment)
            assignment[var] = value
            if solve(list(clauses)):
                return True
            assignment.clear()
            assignment.update(saved)
        return False

    if solve(list(cnf.clauses)):
        for v in range(1, cnf.num_vars + 1):
            assignment.setdefault(v, False)
        return assignment
    return None


def is_satisfiable(cnf: CNF, budget: Optional[Budget] = None) -> bool:
    """Decision form of :func:`solve_dpll`."""
    return solve_dpll(cnf, budget=budget) is not None


def three_sat_to_four_sat(cnf: CNF) -> Tuple[CNF, int]:
    """The paper's 3SAT → 4SAT step (proof of Theorem 4).

    Add a fresh variable ``x0`` and extend every 3-clause with the
    literal ``x0``.  The new formula is satisfiable with **x0 false**
    iff the original is satisfiable (and trivially satisfiable with x0
    true).  Returns ``(new_cnf, x0_index)``.
    """
    if cnf.clause_sizes() - {3}:
        raise ValueError("input must be a 3SAT formula (all clauses size 3)")
    x0 = cnf.num_vars + 1
    out = CNF(num_vars=x0)
    for clause in cnf.clauses:
        out.add_clause(tuple(clause) + (x0,))
    return out, x0


def random_3sat(
    num_vars: int,
    num_clauses: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> CNF:
    """A random 3SAT instance with distinct variables per clause.

    Randomness must be explicit — pass ``rng=`` or ``seed=`` (see
    :func:`repro.graphs.generators.resolve_rng`).
    """
    from ..graphs.generators import resolve_rng

    rng = resolve_rng(rng, seed, "random_3sat")
    if num_vars < 3:
        raise ValueError("need at least 3 variables")
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        vs = rng.sample(range(1, num_vars + 1), 3)
        cnf.add_clause(
            tuple(v if rng.random() < 0.5 else -v for v in vs)
        )
    return cnf
