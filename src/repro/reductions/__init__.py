"""Executable NP-completeness reductions (Theorems 2, 3, 4, 6).

Each reduction module provides the construction, both directions of the
certificate map, and a ``verify``-style entry point that the test suite
cross-checks against exact solvers on both sides.  The source problems
(multiway cut, k-colorability, 3SAT, vertex cover) are implemented here
too, each with a small-instance exact solver.
"""

from .sat import (
    CNF,
    is_satisfiable,
    random_3sat,
    solve_dpll,
    three_sat_to_four_sat,
)
from .multiway_cut import (
    MultiwayCutInstance,
    has_multiway_cut,
    min_multiway_cut,
    separates,
)
from .vertex_cover import (
    greedy_vertex_cover,
    has_vertex_cover,
    is_vertex_cover,
    min_vertex_cover,
    random_low_degree_graph,
)
from .aggressive_reduction import (
    AggressiveReduction,
    build_program,
    coalescing_to_cut,
    cut_to_coalescing,
    program_matches_reduction,
    reduce_multiway_cut,
)
from .conservative_reduction import (
    ConservativeReduction,
    coloring_to_coalescing,
    decide_source_via_target,
    full_coalescing,
    reduce_colorability,
    verify_equivalence,
)
from .incremental_reduction import (
    FourSatGraph,
    IncrementalReduction,
    assignment_to_coloring,
    build_4sat_graph,
    coloring_to_assignment,
    decide_via_coalescing,
    reduce_3sat,
)
from .optimistic_reduction import (
    OptimisticReduction,
    cover_to_decoalescing,
    decoalescing_to_cover,
    quotient_is_greedy,
    reduce_vertex_cover,
    structure_properties,
)

__all__ = [
    "CNF",
    "is_satisfiable",
    "random_3sat",
    "solve_dpll",
    "three_sat_to_four_sat",
    "MultiwayCutInstance",
    "has_multiway_cut",
    "min_multiway_cut",
    "separates",
    "greedy_vertex_cover",
    "has_vertex_cover",
    "is_vertex_cover",
    "min_vertex_cover",
    "random_low_degree_graph",
    "AggressiveReduction",
    "build_program",
    "coalescing_to_cut",
    "cut_to_coalescing",
    "program_matches_reduction",
    "reduce_multiway_cut",
    "ConservativeReduction",
    "coloring_to_coalescing",
    "decide_source_via_target",
    "full_coalescing",
    "reduce_colorability",
    "verify_equivalence",
    "FourSatGraph",
    "IncrementalReduction",
    "assignment_to_coloring",
    "build_4sat_graph",
    "coloring_to_assignment",
    "decide_via_coalescing",
    "reduce_3sat",
    "OptimisticReduction",
    "cover_to_decoalescing",
    "decoalescing_to_cover",
    "quotient_is_greedy",
    "reduce_vertex_cover",
    "structure_properties",
]
