"""Vertex cover: the source problem of the Theorem 6 reduction.

NP-complete even when every vertex has degree ≤ 3 (Garey, Johnson &
Stockmeyer) — exactly the restriction Theorem 6 uses, since each vertex
structure in the optimistic-coalescing reduction has three connection
points.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from ..graphs.graph import Graph, Vertex


def is_vertex_cover(graph: Graph, cover: Set[Vertex]) -> bool:
    """True iff every edge has an endpoint in ``cover``."""
    return all(u in cover or v in cover for u, v in graph.edges())


def min_vertex_cover(graph: Graph) -> Set[Vertex]:
    """An exact minimum vertex cover by branch-and-bound.

    Branches on an uncovered edge (either endpoint must join the
    cover); with a greedy 2-approximation as the initial incumbent.
    Exponential worst case, fast on the degree-≤ 3 instances the
    Theorem 6 tests use.
    """
    best: List[Set[Vertex]] = [greedy_vertex_cover(graph)]

    def recurse(work: Graph, cover: Set[Vertex]) -> None:
        if len(cover) >= len(best[0]):
            return
        edge = next(work.edges(), None)
        if edge is None:
            best[0] = set(cover)
            return
        u, v = edge
        for pick in (u, v):
            sub = work.copy()
            sub.remove_vertex(pick)
            cover.add(pick)
            recurse(sub, cover)
            cover.discard(pick)

    recurse(graph.copy(), set())
    return best[0]


def greedy_vertex_cover(graph: Graph) -> Set[Vertex]:
    """The classic 2-approximation: repeatedly take both endpoints of
    an uncovered edge."""
    work = graph.copy()
    cover: Set[Vertex] = set()
    while True:
        edge = next(work.edges(), None)
        if edge is None:
            return cover
        u, v = edge
        cover.update((u, v))
        work.remove_vertex(u)
        work.remove_vertex(v)


def has_vertex_cover(graph: Graph, budget: int) -> bool:
    """Decision form: is there a cover of size ≤ budget?"""
    return len(min_vertex_cover(graph)) <= budget


def random_low_degree_graph(
    n: int,
    num_edges: int,
    max_degree: int = 3,
    rng: Optional[random.Random] = None,
    prefix: str = "v",
    seed: Optional[int] = None,
) -> Graph:
    """A random graph with maximum degree ≤ ``max_degree`` (default 3,
    the Theorem 6 restriction).  Pass ``rng=`` or ``seed=`` explicitly."""
    from ..graphs.generators import resolve_rng

    rng = resolve_rng(rng, seed, "random_low_degree_graph")
    g = Graph(vertices=[f"{prefix}{i}" for i in range(n)])
    names = list(g.vertices)
    attempts = 0
    while g.num_edges() < num_edges and attempts < 50 * num_edges:
        attempts += 1
        u, v = rng.sample(names, 2)
        if g.has_edge(u, v):
            continue
        if g.degree(u) >= max_degree or g.degree(v) >= max_degree:
            continue
        g.add_edge(u, v)
    return g
