"""Theorem 3: graph k-colorability ≤p conservative coalescing (Figure 2).

Given any graph ``G = (V, E)`` and ``k``, build an interference graph
``H`` that is a disjoint union of edges (hence greedy-2-colorable):

* every vertex of ``G`` appears in ``H`` isolated;
* each edge ``e = (u, v)`` becomes a fresh interference ``(x_e, y_e)``
  with affinities ``(u, x_e)`` and ``(y_e, v)``.

All affinities can be coalesced aggressively, and doing so produces
exactly ``G``.  Hence the conservative instance with budget K = 0 is
positive iff ``G`` is k-colorable.

The second part of the theorem (targets restricted to chordal /
greedy-k-colorable quotients, merging only along affinities) adds a
"cliquefier": for every *pair* of vertices of ``G`` a fresh vertex
``x_{u,v}`` with affinities to ``u`` and ``v`` — an optimal coalescing
then merges the colour classes pairwise into a k-clique, which is both
chordal and greedy-k-colorable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from ..graphs.coloring import k_coloring_exact
from ..graphs.graph import Graph, Vertex
from ..graphs.interference import Coalescing, InterferenceGraph


@dataclass
class ConservativeReduction:
    """The Figure 2 instance plus bookkeeping."""

    source: Graph
    k: int
    interference: InterferenceGraph
    #: original edge (u, v) -> its (x_e, y_e) pair
    edge_gadgets: Dict[Tuple[Vertex, Vertex], Tuple[Vertex, Vertex]]
    #: pair (u, v) -> cliquefier vertex, when built with cliquefier
    pair_gadgets: Dict[Tuple[Vertex, Vertex], Vertex]


def reduce_colorability(
    graph: Graph, k: int, cliquefier: bool = False
) -> ConservativeReduction:
    """Build the Theorem 3 instance.

    With ``cliquefier=False`` this is the first part of the proof (the
    quotient of a full coalescing is exactly ``G``); with True, the
    x_{u,v} gadgets of the second part are added.
    """
    h = InterferenceGraph(vertices=list(graph.vertices))
    edge_gadgets: Dict[Tuple[Vertex, Vertex], Tuple[Vertex, Vertex]] = {}
    for idx, (u, v) in enumerate(graph.edges()):
        xe, ye = f"x_g{idx}", f"y_g{idx}"
        h.add_edge(xe, ye)
        h.add_affinity(u, xe, 1.0)
        h.add_affinity(ye, v, 1.0)
        edge_gadgets[(u, v)] = (xe, ye)
    pair_gadgets: Dict[Tuple[Vertex, Vertex], Vertex] = {}
    if cliquefier:
        for u, v in combinations(sorted(graph.vertices, key=str), 2):
            xuv = f"pair_{u}_{v}"
            h.add_vertex(xuv)
            h.add_affinity(u, xuv, 1.0)
            h.add_affinity(v, xuv, 1.0)
            pair_gadgets[(u, v)] = xuv
    return ConservativeReduction(
        source=graph,
        k=k,
        interference=h,
        edge_gadgets=edge_gadgets,
        pair_gadgets=pair_gadgets,
    )


def full_coalescing(reduction: ConservativeReduction) -> Coalescing:
    """Coalesce every edge-gadget affinity (always interference-free);
    the quotient is isomorphic to the source graph."""
    coalescing = Coalescing(reduction.interference)
    for (u, v), (xe, ye) in reduction.edge_gadgets.items():
        coalescing.union(u, xe)
        coalescing.union(v, ye)
    return coalescing


def coloring_to_coalescing(
    reduction: ConservativeReduction, coloring: Dict[Vertex, int]
) -> Coalescing:
    """Map a k-colouring of the source onto a *total* coalescing of the
    cliquefier instance: colour classes merge pairwise through the
    x_{u,v} gadgets, yielding a quotient that is a clique of ≤ k
    vertices (chordal and greedy-k-colorable)."""
    coalescing = full_coalescing(reduction)
    for (u, v), xuv in reduction.pair_gadgets.items():
        if coloring[u] == coloring[v]:
            coalescing.union(u, xuv)
            coalescing.union(xuv, v)
        else:
            # attach the gadget to one endpoint; only one of its two
            # affinities stays uncoalesced
            coalescing.union(u, xuv)
    return coalescing


def decide_source_via_target(reduction: ConservativeReduction) -> bool:
    """Decide k-colorability of the source through the coalescing
    instance: is there a conservative coalescing with K = 0 among the
    edge gadgets?  (Equivalent by the theorem to the quotient — which is
    the source graph — being k-colorable.)"""
    quotient = full_coalescing(reduction).coalesced_graph()
    return k_coloring_exact(quotient, reduction.k) is not None


def verify_equivalence(reduction: ConservativeReduction) -> Tuple[bool, bool]:
    """Both sides of the Theorem 3 equivalence, for the tests:
    (source k-colorable, target has zero-residual conservative
    coalescing)."""
    source_ok = k_coloring_exact(reduction.source, reduction.k) is not None
    target_ok = decide_source_via_target(reduction)
    return source_ok, target_ok
