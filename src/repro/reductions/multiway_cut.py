"""Multiway cut: the source problem of the Theorem 2 reduction.

Given a graph, k terminals, and a budget K: can K edge removals leave
every terminal in a different connected component?  NP-complete for
unit weights and k = 3 (Dahlhaus et al.), polynomial for k = 2
(min cut).

:func:`min_multiway_cut` is an exact branch-and-bound used as the
source-side oracle when validating the reduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graphs.graph import Graph, Vertex


@dataclass
class MultiwayCutInstance:
    """A multiway-cut instance (unit edge weights)."""

    graph: Graph
    terminals: Tuple[Vertex, ...]

    def __post_init__(self) -> None:
        self.terminals = tuple(self.terminals)
        if len(set(self.terminals)) != len(self.terminals):
            raise ValueError("terminals must be distinct")
        for t in self.terminals:
            if t not in self.graph:
                raise ValueError(f"terminal {t!r} not in graph")


def separates(instance: MultiwayCutInstance, removed: Set[FrozenSet[Vertex]]) -> bool:
    """True iff removing the given edges disconnects all terminals
    pairwise."""
    graph = instance.graph
    seen: Dict[Vertex, int] = {}
    for idx, t in enumerate(instance.terminals):
        if t in seen:
            return False
        stack = [t]
        seen[t] = idx
        while stack:
            x = stack.pop()
            for y in graph.neighbors_view(x):
                if frozenset((x, y)) in removed:
                    continue
                if y in seen:
                    if seen[y] != idx:
                        return False
                    continue
                seen[y] = idx
                stack.append(y)
    return True


def min_multiway_cut(
    instance: MultiwayCutInstance, upper_bound: Optional[int] = None
) -> Set[FrozenSet[Vertex]]:
    """An exact minimum multiway cut by iterative deepening.

    For every size s = 0, 1, 2, ... try all s-subsets of edges.  Fine
    for the reduction-sized instances in tests and benches; the problem
    is NP-complete so no polynomial algorithm is expected.
    """
    edges = [frozenset(e) for e in instance.graph.edges()]
    limit = len(edges) if upper_bound is None else upper_bound
    for size in range(limit + 1):
        for subset in combinations(edges, size):
            removed = set(subset)
            if separates(instance, removed):
                return removed
    raise ValueError("no multiway cut within the bound (terminals equal?)")


def has_multiway_cut(instance: MultiwayCutInstance, budget: int) -> bool:
    """Decision form: is there a cut of size ≤ budget?"""
    try:
        return len(min_multiway_cut(instance, upper_bound=budget)) <= budget
    except ValueError:
        return False


def random_instance(
    n: int,
    p: float,
    num_terminals: int = 3,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> MultiwayCutInstance:
    """A random Erdős–Rényi multiway-cut instance (pass ``rng=`` or
    ``seed=``; see :func:`repro.graphs.generators.resolve_rng`)."""
    from ..graphs.generators import random_graph, resolve_rng

    rng = resolve_rng(rng, seed, "random_instance")

    g = random_graph(n, p, rng)
    names = list(g.vertices)
    terminals = rng.sample(names, min(num_terminals, len(names)))
    return MultiwayCutInstance(graph=g, terminals=tuple(terminals))
