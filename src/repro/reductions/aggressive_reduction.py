"""Theorem 2: multiway cut ≤p aggressive coalescing (Figure 1).

Construction, following the paper:

1. subdivide every edge ``e = (u, v)`` of the multiway-cut graph with a
   fresh vertex ``x_e`` — at most one of the two half-edges ever needs
   to be cut;
2. the *interference* graph contains only a clique on the terminals
   (a triangle for k = 3); every subdivided half-edge becomes an
   **affinity**;
3. ``(G, S, K)`` has a multiway cut of size ≤ K iff the coalescing
   instance can leave ≤ K affinities uncoalesced: connected components
   of the uncut half-edge graph are monochromatic classes, and the
   terminal clique forces the k terminal classes apart.

The module also builds the **program** of Figure 1 whose interference
graph *is* this instance (`build_program`), closing the loop from
graph-level reduction to actual code: one block defining all terminals
together, one block per non-terminal vertex, and per original edge two
move blocks ``x_e = u`` / ``x_e = v`` feeding a common use block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..graphs.graph import Graph, Vertex
from ..graphs.interference import Coalescing, InterferenceGraph
from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .multiway_cut import MultiwayCutInstance, separates


@dataclass
class AggressiveReduction:
    """The target coalescing instance plus the solution maps."""

    source: MultiwayCutInstance
    interference: InterferenceGraph
    #: original edge (u, v) -> its two half-edge affinities
    half_edges: Dict[Tuple[Vertex, Vertex], Tuple[Tuple[Vertex, Vertex], Tuple[Vertex, Vertex]]]

    def subdivision_vertex(self, u: Vertex, v: Vertex) -> Vertex:
        """The x_e vertex created for the original edge (u, v)."""
        key = (u, v) if (u, v) in self.half_edges else (v, u)
        return self.half_edges[key][0][1]


def reduce_multiway_cut(instance: MultiwayCutInstance) -> AggressiveReduction:
    """Build the aggressive-coalescing instance of Theorem 2."""
    g = InterferenceGraph(vertices=list(instance.graph.vertices))
    terminals = instance.terminals
    for i in range(len(terminals)):
        for j in range(i + 1, len(terminals)):
            g.add_edge(terminals[i], terminals[j])
    half_edges: Dict[
        Tuple[Vertex, Vertex],
        Tuple[Tuple[Vertex, Vertex], Tuple[Vertex, Vertex]],
    ] = {}
    for idx, (u, v) in enumerate(instance.graph.edges()):
        xe = f"x_e{idx}"
        g.add_affinity(u, xe, 1.0)
        g.add_affinity(xe, v, 1.0)
        half_edges[(u, v)] = ((u, xe), (xe, v))
    return AggressiveReduction(
        source=instance, interference=g, half_edges=half_edges
    )


def cut_to_coalescing(
    reduction: AggressiveReduction, removed: Set[FrozenSet[Vertex]]
) -> Coalescing:
    """Map a multiway cut to a coalescing with ≤ |cut| residual
    affinities.

    Components of the subdivided graph minus the cut get one class
    each; a cut original edge breaks exactly one of its two half-edge
    affinities (x_e goes with whichever endpoint's side keeps it).
    """
    graph = reduction.interference
    coalescing = Coalescing(graph)
    for (u, v), ((a1, xe), (a2, _)) in reduction.half_edges.items():
        if frozenset((u, v)) in removed:
            # keep x_e with u's side: give up the (x_e, v) half-edge
            coalescing.union(u, xe)
        else:
            coalescing.union(u, xe)
            coalescing.union(xe, v)
    return coalescing


def coalescing_to_cut(
    reduction: AggressiveReduction, coalescing: Coalescing
) -> Set[FrozenSet[Vertex]]:
    """Map a coalescing back to a multiway cut of size ≤ the number of
    uncoalesced affinities: cut each original edge with a broken
    half-edge."""
    cut: Set[FrozenSet[Vertex]] = set()
    for (u, v), (h1, h2) in reduction.half_edges.items():
        broken = not coalescing.same_class(*h1) or not coalescing.same_class(*h2)
        if broken:
            cut.add(frozenset((u, v)))
    return cut


def verify_reduction(
    reduction: AggressiveReduction, budget: int
) -> Tuple[bool, bool]:
    """Exercise both directions of the Theorem 2 equivalence.

    Returns ``(cut_side, coalesce_side)`` decisions computed through
    the maps — the test suite asserts they agree with the exact oracles.
    """
    from ..coalescing.aggressive import aggressive_coalesce_exact
    from .multiway_cut import min_multiway_cut

    cut = min_multiway_cut(reduction.source)
    cut_ok = len(cut) <= budget
    result = aggressive_coalesce_exact(reduction.interference)
    coalesce_ok = len(result.given_up) <= budget
    return cut_ok, coalesce_ok


# ----------------------------------------------------------------------
# the Figure 1 program construction
# ----------------------------------------------------------------------
def build_program(instance: MultiwayCutInstance) -> Function:
    """A program whose interference graph is the Theorem 2 instance.

    Layout (Figure 1): an entry dispatching to the definition blocks; a
    block ``B`` defining all terminals with a single instruction (one
    parallel definition keeps them simultaneously live); a block ``B_v``
    per non-terminal; per original edge ``e = (u, v)``, two predecessor
    blocks performing ``x_e = u`` and ``x_e = v`` and a block ``C_e``
    using ``x_e``.
    """
    from ..ir.instructions import Instr

    fb = FunctionBuilder("figure1")
    fb.block("entry")
    terminals = instance.terminals
    term_set = set(terminals)
    # a single instruction defining all terminals in parallel keeps
    # them simultaneously live: the terminal clique
    fb.block("B")
    fb.func.blocks["B"].instrs.append(
        Instr("defk", tuple(str(t) for t in terminals), ())
    )
    fb.edge("entry", "B")
    def_block: Dict[Vertex, str] = {t: "B" for t in terminals}
    for v in instance.graph.vertices:
        if v in term_set:
            continue
        name = f"B_{v}"
        fb.block(name).const(str(v))
        fb.edge("entry", name)
        def_block[v] = name
    for idx, (u, v) in enumerate(instance.graph.edges()):
        xe = f"x_e{idx}"
        use_block = f"C_e{idx}"
        fb.block(use_block).use(xe)
        for endpoint in (u, v):
            mv = f"P_e{idx}_{endpoint}"
            fb.block(mv).mov(xe, str(endpoint))
            fb.edge(def_block[endpoint], mv)
            fb.edge(mv, use_block)
    return fb.finish()


def program_matches_reduction(
    instance: MultiwayCutInstance, unweighted: bool = True
) -> bool:
    """Check that the Figure 1 program's interference graph equals the
    direct graph construction (same interferences among the original
    vertices and x_e's, same affinities)."""
    from ..ir.interference import chaitin_interference

    reduction = reduce_multiway_cut(instance)
    func = build_program(instance)
    built = chaitin_interference(func, weighted=not unweighted)
    expect = reduction.interference

    name = {v: str(v) for v in expect.vertices}
    if set(built.vertices) != {name[v] for v in expect.vertices}:
        return False
    expect_edges = {
        frozenset((name[u], name[v])) for u, v in expect.edges()
    }
    built_edges = {frozenset(e) for e in built.edges()}
    if expect_edges != built_edges:
        return False
    expect_affinities = {
        frozenset((name[u], name[v])) for u, v, _ in expect.affinities()
    }
    built_affinities = {
        frozenset((u, v)) for u, v, _ in built.affinities()
    }
    return expect_affinities == built_affinities
