"""Graph k-colorability as an NP problem interface.

Thin wrapper over :mod:`repro.graphs.coloring` so the reduction modules
and benches can treat k-colorability like the other source problems
(multiway cut, vertex cover, 3SAT), plus instance generators tuned for
the Theorem 3 tests.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..graphs.coloring import is_k_colorable, k_coloring_exact
from ..graphs.graph import Graph, Vertex
from ..graphs.generators import random_graph


def decide(graph: Graph, k: int) -> bool:
    """Is the graph k-colorable?  (Exact, exponential worst case.)"""
    return is_k_colorable(graph, k)


def certificate(graph: Graph, k: int) -> Optional[Dict[Vertex, int]]:
    """A k-colouring, or None."""
    return k_coloring_exact(graph, k)


def random_hard_instance(
    n: int,
    k: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> Graph:
    """A random graph near the k-colorability threshold.

    Erdős–Rényi with edge probability tuned so that roughly half the
    instances are k-colorable — the interesting regime for exercising
    both branches of the Theorem 3 equivalence.  Pass ``rng=`` or
    ``seed=`` explicitly.
    """
    from ..graphs.generators import resolve_rng

    rng = resolve_rng(rng, seed, "random_hard_instance")
    # average degree ≈ k ln k sits near the chromatic threshold
    import math

    p = min(0.9, k * math.log(max(2, k)) / max(1, n - 1))
    return random_graph(n, p, rng)
