"""Theorem 6: vertex cover ≤p optimistic coalescing (Figures 6–7).

For every vertex ``v`` of a degree-≤ 3 graph ``G`` build a *structure*
S(v) with k = 4:

* a heart of two non-interfering vertices ``A, A'`` joined by the one
  affinity of the structure;
* an inner 4-clique ``q1..q4`` (the bold clique of Figure 6);
* three branches, one per possible neighbour: port ``v_j`` plus a
  widget vertex ``w_j`` wiring the branch to the heart and the clique.

An edge ``(u, v)`` of ``G`` becomes an interference between a free port
of S(u) and a free port of S(v).

The wiring (verified property by property in the test suite —
``structure_properties``) realizes exactly the behaviour the proof
needs:

* with the heart coalesced and every port occupied, *every* vertex of
  the structure has degree ≥ 4: the greedy elimination cannot touch it;
* de-coalescing the heart lets the elimination eat the entire
  structure from the inside, ports included, whatever the ports see;
* if all ports lose their outside edges, the structure is eaten even
  with the heart coalesced;
* eating from a strict subset of branches stalls before the inner
  clique (the "cannot be attacked by any two of its branches" claim).

Consequently the de-coalesced quotient is greedy-4-colorable iff the
de-coalesced structures form a vertex cover of ``G``, so the minimum
number of given-up affinities equals the minimum vertex cover size.

Note on Figure 7: the paper additionally splits widget vertices with
extra affinities to make the instance graph *chordal*, strengthening
the theorem.  The hexagon widgets' exact drawing is not recoverable
from the text, so this module reconstructs a functionally equivalent
structure and verifies the proof's stated properties mechanically; the
instance graph here is greedy-4-colorable (the class the problem
statement requires) but not necessarily chordal.  This substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..graphs.graph import Graph, Vertex
from ..graphs.greedy import is_greedy_k_colorable
from ..graphs.interference import Coalescing, InterferenceGraph

K = 4  # the fixed register count of Theorem 6


@dataclass
class OptimisticReduction:
    """The Theorem 6 instance plus bookkeeping."""

    source: Graph
    interference: InterferenceGraph
    #: source vertex -> its heart affinity (A, A')
    hearts: Dict[Vertex, Tuple[Vertex, Vertex]]
    #: source vertex -> its three port vertices
    ports: Dict[Vertex, List[Vertex]]
    #: source edge -> the port interference realizing it
    edge_ports: Dict[Tuple[Vertex, Vertex], Tuple[Vertex, Vertex]]


def _add_structure(g: InterferenceGraph, tag: str) -> Tuple[Tuple[str, str], List[str]]:
    """Add one vertex structure; return its heart pair and ports.

    Wiring (all names prefixed by ``tag``):

    * inner clique q1..q4;
    * heart: A adjacent to the three widget vertices w1..w3;
      A' adjacent to q1, q2, q3;
    * branch j: w_j adjacent to {A, v_j, q1, q2},
      port v_j adjacent to {w_j, q3, q4}.
    """
    a, a2 = f"{tag}.A", f"{tag}.A'"
    qs = [f"{tag}.q{i}" for i in range(1, 5)]
    for i in range(4):
        for j in range(i + 1, 4):
            g.add_edge(qs[i], qs[j])
    g.add_vertex(a)
    g.add_vertex(a2)
    for q in qs[:3]:
        g.add_edge(a2, q)
    ports: List[str] = []
    for j in range(1, 4):
        w, v = f"{tag}.w{j}", f"{tag}.v{j}"
        g.add_edge(w, a)
        g.add_edge(w, v)
        g.add_edge(w, qs[0])
        g.add_edge(w, qs[1])
        g.add_edge(v, qs[2])
        g.add_edge(v, qs[3])
        ports.append(v)
    g.add_affinity(a, a2, 1.0)
    return (a, a2), ports


def reduce_vertex_cover(graph: Graph) -> OptimisticReduction:
    """Build the Theorem 6 instance from a degree-≤ 3 graph."""
    if graph.max_degree() > 3:
        raise ValueError("Theorem 6 requires maximum degree ≤ 3")
    g = InterferenceGraph()
    hearts: Dict[Vertex, Tuple[Vertex, Vertex]] = {}
    ports: Dict[Vertex, List[Vertex]] = {}
    free: Dict[Vertex, List[Vertex]] = {}
    for v in graph.vertices:
        heart, plist = _add_structure(g, f"S[{v}]")
        hearts[v] = heart
        ports[v] = plist
        free[v] = list(plist)
    edge_ports: Dict[Tuple[Vertex, Vertex], Tuple[Vertex, Vertex]] = {}
    for u, v in graph.edges():
        pu = free[u].pop()
        pv = free[v].pop()
        g.add_edge(pu, pv)
        edge_ports[(u, v)] = (pu, pv)
    return OptimisticReduction(
        source=graph,
        interference=g,
        hearts=hearts,
        ports=ports,
        edge_ports=edge_ports,
    )


def cover_to_decoalescing(
    reduction: OptimisticReduction, cover: Set[Vertex]
) -> Coalescing:
    """Coalesce the hearts of every structure *not* in the cover —
    i.e. de-coalesce exactly the cover's affinities from the fully
    coalesced graph."""
    coalescing = Coalescing(reduction.interference)
    for v, (a, a2) in reduction.hearts.items():
        if v not in cover:
            coalescing.union(a, a2)
    return coalescing


def decoalescing_to_cover(
    reduction: OptimisticReduction, coalescing: Coalescing
) -> Set[Vertex]:
    """The set of source vertices whose heart affinity is given up."""
    return {
        v
        for v, (a, a2) in reduction.hearts.items()
        if not coalescing.same_class(a, a2)
    }


def quotient_is_greedy(reduction: OptimisticReduction, cover: Set[Vertex]) -> bool:
    """Is the quotient after de-coalescing exactly ``cover`` greedy-4-
    colorable?  (The theorem says: iff ``cover`` is a vertex cover.)"""
    quotient = cover_to_decoalescing(reduction, cover).coalesced_graph()
    return is_greedy_k_colorable(quotient, K)


# ----------------------------------------------------------------------
# the structure-level properties the proof relies on
# ----------------------------------------------------------------------
def structure_properties() -> Dict[str, bool]:
    """Check the four behaviours of a single structure (see module
    docstring).  Returns a dict of named boolean results; the test
    suite asserts they are all True."""
    results: Dict[str, bool] = {}

    def make(occupied: int, coalesce_heart: bool) -> InterferenceGraph:
        g = InterferenceGraph()
        (a, a2), ports = _add_structure(g, "S")
        for i in range(occupied):
            g.add_edge(ports[i], f"ext{i}")
            # make the external rigid so it cannot be eaten first
            for j in range(4):
                g.add_edge(f"ext{i}", f"pin{i}_{j}")
                for j2 in range(j):
                    g.add_edge(f"pin{i}_{j}", f"pin{i}_{j2}")
                g.add_edge(f"pin{i}_{j}", f"pin{i}_top")
        if coalesce_heart:
            g.merge_in_place(a, a2)
        return g

    def survivors(g: InterferenceGraph) -> Set[Vertex]:
        from ..graphs.greedy import greedy_elimination_order

        order, _ = greedy_elimination_order(g, K)
        return set(g.vertices) - set(order)

    # R1: coalesced heart + all ports occupied -> fully rigid
    g = make(3, True)
    alive = survivors(g)
    results["rigid_when_coalesced"] = all(
        v in alive for v in g.vertices if str(v).startswith("S.")
    )
    # R2: de-coalesced heart -> whole structure eaten despite occupancy
    g = make(3, False)
    alive = survivors(g)
    results["eaten_when_decoalesced"] = not any(
        str(v).startswith("S.") for v in alive
    )
    # R3: coalesced heart + no ports occupied -> eaten
    g = make(0, True)
    results["eaten_when_neighbors_gone"] = is_greedy_k_colorable(g, K)
    # R5: coalesced heart + one port occupied -> stalls with the inner
    # clique and that branch alive
    g = make(1, True)
    alive = survivors(g)
    clique_alive = all(f"S.q{i}" in alive for i in range(1, 5))
    port_alive = "S.v1" in alive
    results["stalls_with_one_branch"] = clique_alive and port_alive
    return results
