"""Theorem 4: 3SAT ≤p incremental conservative coalescing (Figure 4).

Two stages, following the paper:

1. **4SAT → 3-colorability with clause gadgets** (Figure 4).  The graph
   has a base triangle {T, F, R}; per variable a triangle
   {x_i, x̄_i, R}; per 4-literal clause: four ``a`` vertices, two ``b``
   vertices, two ``c`` vertices wired as two OR-gadgets feeding a third
   whose output is identified with the global T vertex.  G is
   3-colorable iff the 4SAT formula is satisfiable.

2. **3SAT → the coalescing question**.  Extend each 3-clause with a
   fresh variable x₀ (:func:`~repro.reductions.sat.three_sat_to_four_sat`);
   the 4SAT graph is then always 3-colorable, and the original 3SAT
   formula is satisfiable iff there is a 3-colouring with
   ``colour(x₀) = colour(F)`` — i.e. iff the single affinity
   ``(x₀, F)`` can be conservatively coalesced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..graphs.coloring import k_coloring_exact
from ..graphs.graph import Graph, Vertex
from ..graphs.interference import InterferenceGraph
from .sat import CNF, three_sat_to_four_sat

TRUE, FALSE, NEUTRAL = "T", "F", "R"


@dataclass
class FourSatGraph:
    """The Figure 4 graph for a 4SAT formula."""

    cnf: CNF
    graph: Graph

    def literal_vertex(self, lit: int) -> Vertex:
        """The vertex standing for a literal (positive or negated)."""
        return f"x{lit}" if lit > 0 else f"nx{-lit}"


def build_4sat_graph(cnf: CNF) -> FourSatGraph:
    """Build the Figure 4 graph.  Requires all clauses of size 4."""
    if cnf.clause_sizes() - {4}:
        raise ValueError("formula must have only 4-literal clauses")
    g = Graph()
    # base triangle
    g.add_edge(TRUE, FALSE)
    g.add_edge(FALSE, NEUTRAL)
    g.add_edge(NEUTRAL, TRUE)
    # variable triangles: x_i and its negation with R
    for i in range(1, cnf.num_vars + 1):
        g.add_edge(f"x{i}", f"nx{i}")
        g.add_edge(f"x{i}", NEUTRAL)
        g.add_edge(f"nx{i}", NEUTRAL)

    def lit(literal: int) -> Vertex:
        return f"x{literal}" if literal > 0 else f"nx{-literal}"

    for ci, clause in enumerate(cnf.clauses):
        y1, y2, y3, y4 = (lit(l) for l in clause)
        a1, a2, a3, a4 = (f"a{ci}_{j}" for j in range(1, 5))
        b1, b2 = f"b{ci}_1", f"b{ci}_2"
        c1, c2 = f"c{ci}_1", f"c{ci}_2"
        # OR gadget 1: b1 = y1 ∨ y2
        g.add_edge(y1, a1)
        g.add_edge(y2, a2)
        g.add_edge(a1, a2)
        g.add_edge(a1, b1)
        g.add_edge(a2, b1)
        # OR gadget 2: b2 = y3 ∨ y4
        g.add_edge(y3, a3)
        g.add_edge(y4, a4)
        g.add_edge(a3, a4)
        g.add_edge(a3, b2)
        g.add_edge(a4, b2)
        # OR gadget 3 with its output identified with T:
        # colourable iff b1 ∨ b2 is not (F, F)
        g.add_edge(b1, c1)
        g.add_edge(b2, c2)
        g.add_edge(c1, c2)
        g.add_edge(c1, TRUE)
        g.add_edge(c2, TRUE)
    return FourSatGraph(cnf=cnf, graph=g)


def assignment_to_coloring(
    fsg: FourSatGraph, assignment: Dict[int, bool]
) -> Dict[Vertex, int]:
    """Extend a satisfying assignment to a full 3-colouring of the
    Figure 4 graph (colours: 0 = T, 1 = F, 2 = R).

    Follows the paper's proof: colour each literal by its truth value,
    each b as T iff one of its pair of literals is true, and complete
    the a/c internals with closed-form rules (the gadget analysis in
    the proof of Theorem 4)."""
    if not fsg.cnf.is_satisfied_by(assignment):
        raise ValueError("assignment does not satisfy the formula")
    coloring: Dict[Vertex, int] = {TRUE: 0, FALSE: 1, NEUTRAL: 2}
    for i in range(1, fsg.cnf.num_vars + 1):
        value = assignment[i]
        coloring[f"x{i}"] = 0 if value else 1
        coloring[f"nx{i}"] = 1 if value else 0

    def or_inputs(t1: int, t2: int, b: int) -> Tuple[int, int]:
        """Colours for the two a-vertices of an OR gadget whose literal
        inputs are coloured t1, t2 and whose output b is fixed."""
        if b == 1:  # both literals false: a's take T and R
            return 0, 2
        # b = 0: at least one literal is true (coloured 0)
        if t1 == 1:
            return 2, 1
        return 1, 2

    for ci, clause in enumerate(fsg.cnf.clauses):
        values = [assignment[abs(l)] == (l > 0) for l in clause]
        lits = [
            coloring[f"x{l}" if l > 0 else f"nx{-l}"] for l in clause
        ]
        b1 = 0 if (values[0] or values[1]) else 1
        b2 = 0 if (values[2] or values[3]) else 1
        coloring[f"b{ci}_1"] = b1
        coloring[f"b{ci}_2"] = b2
        a1, a2 = or_inputs(lits[0], lits[1], b1)
        a3, a4 = or_inputs(lits[2], lits[3], b2)
        coloring[f"a{ci}_1"] = a1
        coloring[f"a{ci}_2"] = a2
        coloring[f"a{ci}_3"] = a3
        coloring[f"a{ci}_4"] = a4
        # c gadget: c1 avoids {b1, T}; c2 takes the other of {F, R}
        c1 = 1 if b1 == 0 else 2
        c2 = 2 if c1 == 1 else 1
        if c2 == coloring[f"b{ci}_2"]:
            raise AssertionError("clause unsatisfied slipped through")
        coloring[f"c{ci}_1"] = c1
        coloring[f"c{ci}_2"] = c2
    return coloring


def coloring_to_assignment(
    fsg: FourSatGraph, coloring: Dict[Vertex, int]
) -> Dict[int, bool]:
    """Read a truth assignment off a 3-colouring (paper's converse
    direction): a variable is true iff coloured like T."""
    t_color = coloring[TRUE]
    return {
        i: coloring[f"x{i}"] == t_color
        for i in range(1, fsg.cnf.num_vars + 1)
    }


@dataclass
class IncrementalReduction:
    """The full Theorem 4 instance: graph + the single affinity."""

    source: CNF                 # the original 3SAT formula
    four_sat: CNF               # with x0 added to every clause
    x0: int
    fsg: FourSatGraph
    affinity: Tuple[Vertex, Vertex]

    @property
    def interference(self) -> InterferenceGraph:
        """The instance as an interference graph with its one affinity."""
        g = InterferenceGraph()
        for v in self.fsg.graph.vertices:
            g.add_vertex(v)
        for u, v in self.fsg.graph.edges():
            g.add_edge(u, v)
        g.add_affinity(*self.affinity)
        return g


def reduce_3sat(cnf: CNF) -> IncrementalReduction:
    """Build the Theorem 4 instance from a 3SAT formula.

    The graph is 3-colorable by construction (set x0 true); the
    affinity (x0-vertex, F) is coalescible iff the 3SAT formula is
    satisfiable.
    """
    four, x0 = three_sat_to_four_sat(cnf)
    fsg = build_4sat_graph(four)
    return IncrementalReduction(
        source=cnf,
        four_sat=four,
        x0=x0,
        fsg=fsg,
        affinity=(f"x{x0}", FALSE),
    )


def decide_via_coalescing(reduction: IncrementalReduction) -> bool:
    """Decide 3SAT satisfiability through the coalescing instance:
    is there a 3-colouring with colour(x0) = colour(F)?"""
    x, y = reduction.affinity
    return (
        k_coloring_exact(reduction.fsg.graph, 3, same_color=[(x, y)])
        is not None
    )
